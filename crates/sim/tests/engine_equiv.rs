//! Engine ⇔ serial equivalence: the parallel engine must return results
//! bit-identical to the serial `sweep`/`run_suite` reference
//! implementation, for every predictor type, any thread count, and the
//! edge suites (empty, singleton).
//!
//! CI runs this file explicitly (`cargo test -p dfcm-sim --test
//! engine_equiv`); it is the contract that lets every figure use the
//! engine while EXPERIMENTS.md stays comparable across machines.

use dfcm::{
    DfcmPredictor, FcmPredictor, LastValuePredictor, StridePredictor, TwoDeltaStridePredictor,
    ValuePredictor,
};
use dfcm_sim::{run_suite, run_suite_engine, sweep, sweep_engine, EngineConfig};
use dfcm_trace::{BenchmarkTrace, Trace, TraceRecord};
use proptest::prelude::*;

const THREADS: [usize; 3] = [1, 4, 64];

static NAMES: [&str; 4] = ["b0", "b1", "b2", "b3"];

fn suite_from(benches: &[Vec<(u64, u64)>]) -> Vec<BenchmarkTrace> {
    benches
        .iter()
        .enumerate()
        .map(|(i, records)| BenchmarkTrace {
            name: NAMES[i % NAMES.len()],
            trace: records
                .iter()
                .map(|&(pc, value)| TraceRecord::new(pc, value))
                .collect::<Trace>(),
        })
        .collect()
}

type SharedFactory = Box<dyn Fn() -> Box<dyn ValuePredictor> + Sync>;

/// One factory per predictor family, all sized small so tables alias and
/// any ordering bug would change the results.
fn factories() -> Vec<(&'static str, SharedFactory)> {
    vec![
        ("lvp", Box::new(|| Box::new(LastValuePredictor::new(5)))),
        ("stride", Box::new(|| Box::new(StridePredictor::new(5)))),
        (
            "2delta",
            Box::new(|| Box::new(TwoDeltaStridePredictor::new(5))),
        ),
        (
            "fcm",
            Box::new(|| {
                Box::new(
                    FcmPredictor::builder()
                        .l1_bits(5)
                        .l2_bits(7)
                        .build()
                        .unwrap(),
                )
            }),
        ),
        (
            "dfcm",
            Box::new(|| {
                Box::new(
                    DfcmPredictor::builder()
                        .l1_bits(5)
                        .l2_bits(7)
                        .build()
                        .unwrap(),
                )
            }),
        ),
    ]
}

fn assert_equivalent(traces: &[BenchmarkTrace]) {
    for (kind, factory) in factories() {
        let serial = run_suite(&*factory, traces);
        for threads in THREADS {
            let (engine, report) =
                run_suite_engine(&*factory, traces, &EngineConfig::threads(threads));
            assert_eq!(engine, serial, "{kind} diverged at {threads} threads");
            assert_eq!(report.tasks.len(), traces.len(), "{kind} task count");
        }
    }
}

// Aligned PCs (see `TraceRecord::pc`) over a small window so the tiny
// tables see heavy aliasing; values from the full u64 range.
fn arb_suite() -> impl Strategy<Value = Vec<Vec<(u64, u64)>>> {
    prop::collection::vec(
        prop::collection::vec((0u64..64u64, any::<u64>()), 0..120)
            .prop_map(|v| v.into_iter().map(|(pc, value)| (pc * 4, value)).collect()),
        0..4,
    )
}

proptest! {
    #[test]
    fn engine_matches_serial_on_arbitrary_suites(benches in arb_suite()) {
        let traces = suite_from(&benches);
        assert_equivalent(&traces);
    }

    #[test]
    fn sweep_engine_matches_serial_sweep(benches in arb_suite()) {
        let traces = suite_from(&benches);
        let configs = [(4u32, 6u32), (5, 7), (6, 6)];
        let factory = |&(l1, l2): &(u32, u32)| {
            DfcmPredictor::builder()
                .l1_bits(l1)
                .l2_bits(l2)
                .build()
                .unwrap()
        };
        let serial = sweep(&configs, factory, &traces);
        for threads in THREADS {
            let (points, report) =
                sweep_engine(&configs, factory, &traces, &EngineConfig::threads(threads));
            prop_assert!(points == serial, "sweep diverged at {} threads", threads);
            prop_assert!(report.tasks.len() == configs.len() * traces.len());
        }
    }
}

#[test]
fn empty_suite_is_equivalent() {
    assert_equivalent(&[]);
}

#[test]
fn singleton_suite_is_equivalent() {
    let traces = suite_from(&[(0..200u64).map(|i| (4 * (i % 16), i * 3)).collect()]);
    assert_eq!(traces.len(), 1);
    assert_equivalent(&traces);
}

#[test]
fn empty_benchmark_inside_suite_is_equivalent() {
    // A benchmark with zero records still produces a (zeroed) result row.
    let traces = suite_from(&[vec![], (0..100u64).map(|i| (4 * (i % 8), i)).collect()]);
    assert_equivalent(&traces);
}
