//! Untrusted kernels inside an engine sweep: a kernel that trips its VM
//! resource guards must surface as a `Permanent` task failure — never a
//! hang, never a silent truncation — while well-behaved kernels in the
//! same batch complete normally.

use std::time::Duration;

use dfcm_sim::engine::{run_tasks_ft, TaskError, TaskOutput};
use dfcm_sim::{EngineConfig, RetryPolicy, TaskOutcome};
use dfcm_vm::{assemble, Vm, VmError, VmLimits};

/// A batch mixing healthy and pathological kernels. `spins` is the
/// worst case: a non-emitting infinite loop, which without the
/// instruction budget would hang `try_take_trace` (and its worker
/// thread) forever.
const KERNELS: [(&str, &str); 3] = [
    (
        "counts",
        ".text\nmain: li r1, 0\nli r2, 200\nloop: addi r1, r1, 1\nbne r1, r2, loop\nhalt",
    ),
    ("spins", ".text\nmain: j main"),
    ("faults", ".text\nmain: li r1, -9\nlw r2, 0(r1)\nhalt"),
];

fn guarded_limits() -> VmLimits {
    VmLimits {
        max_instructions: Some(50_000),
        deadline: Some(Duration::from_secs(30)),
        ..VmLimits::default()
    }
}

fn run_batch() -> (Vec<Option<usize>>, dfcm_sim::EngineReport) {
    let labels = KERNELS.iter().map(|(name, _)| (*name).to_owned()).collect();
    let config = EngineConfig {
        // Retries would only re-run the same deterministic kernels; a
        // nonzero budget also proves Permanent failures skip it.
        retry: RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        },
        ..EngineConfig::default()
    };
    run_tasks_ft(
        labels,
        |i| {
            let program =
                assemble(KERNELS[i].1).map_err(|e| TaskError::Permanent(e.to_string()))?;
            // `?` on VmError exercises the From<VmError> for TaskError
            // mapping for both construction and execution failures.
            let mut vm = Vm::with_limits(program, guarded_limits())?;
            let trace = vm.try_take_trace(1_000)?;
            Ok(TaskOutput {
                records: trace.len() as u64,
                value: trace.len(),
            })
        },
        &config,
    )
}

#[test]
fn runaway_kernel_degrades_to_permanent_failure_not_a_hang() {
    let (values, report) = run_batch();

    // The healthy kernel completed.
    assert_eq!(report.tasks[0].outcome, TaskOutcome::Ok);
    assert_eq!(values[0], Some(202)); // 2 li + 200 addi emissions
    let spins = &report.tasks[1];
    let TaskOutcome::Failed { error } = &spins.outcome else {
        panic!("runaway kernel must fail, got {:?}", spins.outcome);
    };
    assert!(
        error.contains("instruction budget of 50000 exhausted"),
        "unexpected error text: {error}"
    );
    assert_eq!(values[1], None);
    // Permanent failures must fail fast, not burn the retry budget.
    assert_eq!(spins.attempts, 1);

    // The memory-faulting kernel also maps to a permanent failure.
    let faults = &report.tasks[2];
    let TaskOutcome::Failed { error } = &faults.outcome else {
        panic!("faulting kernel must fail, got {:?}", faults.outcome);
    };
    assert!(
        error.contains("memory access out of bounds"),
        "unexpected error text: {error}"
    );
    assert_eq!(faults.attempts, 1);
}

#[test]
fn vm_error_maps_to_permanent_task_error() {
    let errors = [
        VmError::InstructionBudgetExhausted { budget: 7 },
        VmError::DeadlineExceeded {
            deadline: Duration::from_secs(1),
        },
        VmError::MemoryOutOfBounds { pc: 3, addr: -1 },
        VmError::DataImageTooLarge {
            needed: 9000,
            available: 64,
        },
    ];
    for e in errors {
        let mapped = TaskError::from(e.clone());
        assert_eq!(mapped, TaskError::Permanent(e.to_string()));
    }
}
