//! Predictor state serialization round-trips.
//!
//! Every predictor the serving daemon can host exposes
//! `state_words`/`load_state_words` for crash-consistent snapshots. These
//! tests pin the contract: a restored predictor is behaviourally identical
//! to the original, and corrupt or hostile blobs are rejected without
//! mutating the target.

use dfcm::{
    DfcmPredictor, FcmPredictor, LastValuePredictor, StridePredictor, TwoDeltaStridePredictor,
    ValuePredictor,
};

/// A short value stream with constant, stride, and repeating-pattern PCs so
/// every predictor exercises its tables.
fn warm_stream() -> Vec<(u64, u64)> {
    let mut stream = Vec::new();
    for i in 0..200u64 {
        stream.push((0x40_0000, 7)); // constant
        stream.push((0x40_0004, 100 + i * 3)); // stride
        stream.push((0x40_0008, [5, 9, 2, 9][i as usize % 4])); // pattern
    }
    stream
}

/// Warm `a` on the stream, copy its state into the fresh `b`, then assert
/// both produce identical outcomes on a continuation stream.
fn assert_restored_matches<P, F>(make: F)
where
    P: ValuePredictor,
    F: Fn() -> P,
    P: StateWords,
{
    let mut a = make();
    for &(pc, v) in &warm_stream() {
        a.access(pc, v);
    }
    let words = a.state_words();
    let mut b = make();
    b.load_state_words(&words).expect("round-trip load");
    assert_eq!(
        words,
        b.state_words(),
        "restore must be byte-identical to the snapshot"
    );
    for i in 0..100u64 {
        let (pc, v) = (0x40_0000 + (i % 5) * 4, i.wrapping_mul(17) % 50);
        let oa = a.access(pc, v);
        let ob = b.access(pc, v);
        assert_eq!(oa.predicted, ob.predicted, "step {i}");
        assert_eq!(oa.correct, ob.correct, "step {i}");
    }
}

/// Test-local view over the inherent state methods so the generic helper
/// can cover all five kinds.
trait StateWords {
    fn state_words(&self) -> Vec<u64>;
    fn load_state_words(&mut self, words: &[u64]) -> Result<(), dfcm::ConfigError>;
}

macro_rules! forward_state {
    ($($ty:ty),+) => {$(
        impl StateWords for $ty {
            fn state_words(&self) -> Vec<u64> {
                <$ty>::state_words(self)
            }
            fn load_state_words(&mut self, words: &[u64]) -> Result<(), dfcm::ConfigError> {
                <$ty>::load_state_words(self, words)
            }
        }
    )+};
}

forward_state!(
    LastValuePredictor,
    StridePredictor,
    TwoDeltaStridePredictor,
    FcmPredictor,
    DfcmPredictor
);

#[test]
fn lvp_state_round_trips() {
    assert_restored_matches(|| LastValuePredictor::new(6));
}

#[test]
fn stride_state_round_trips() {
    assert_restored_matches(|| StridePredictor::new(6));
}

#[test]
fn two_delta_state_round_trips() {
    assert_restored_matches(|| TwoDeltaStridePredictor::new(6));
}

#[test]
fn fcm_state_round_trips() {
    assert_restored_matches(|| {
        FcmPredictor::builder()
            .l1_bits(6)
            .l2_bits(8)
            .build()
            .unwrap()
    });
}

#[test]
fn dfcm_state_round_trips() {
    assert_restored_matches(|| {
        DfcmPredictor::builder()
            .l1_bits(6)
            .l2_bits(8)
            .build()
            .unwrap()
    });
}

#[test]
fn wrong_length_is_rejected_without_mutation() {
    let mut lvp = LastValuePredictor::new(4);
    lvp.update(0x40_0000, 42);
    let before = lvp.state_words();
    assert!(lvp.load_state_words(&[1, 2, 3]).is_err());
    assert_eq!(lvp.state_words(), before);
}

#[test]
fn hostile_fcm_history_is_rejected() {
    // A level-1 history word >= the level-2 table length would panic the
    // next prediction's table lookup; the load must refuse it instead.
    let mut fcm = FcmPredictor::builder()
        .l1_bits(4)
        .l2_bits(6)
        .build()
        .unwrap();
    let mut words = fcm.state_words();
    words[0] = 1 << 6; // first l1 slot: one past the last valid l2 index
    let before = fcm.state_words();
    assert!(fcm.load_state_words(&words).is_err());
    assert_eq!(fcm.state_words(), before);
}

#[test]
fn hostile_dfcm_history_is_rejected() {
    let mut dfcm = DfcmPredictor::builder()
        .l1_bits(4)
        .l2_bits(6)
        .build()
        .unwrap();
    let mut words = dfcm.state_words();
    words[1 << 4] = u64::MAX; // first hist slot (after the 16 last-values)
    assert!(dfcm.load_state_words(&words).is_err());
}

#[test]
fn hostile_stride_confidence_is_rejected() {
    // Confidence counters are 3-bit; a stored value above the saturation
    // maximum can never legally occur.
    let mut s = StridePredictor::new(4);
    let mut words = s.state_words();
    let n = 1 << 4;
    words[2 * n] = 999; // first confidence slot
    let before = s.state_words();
    assert!(s.load_state_words(&words).is_err());
    assert_eq!(s.state_words(), before);
}
