//! Property-based tests of the predictors' structural invariants.

use dfcm::{
    AliasAnalyzer, AnalyzedKind, DfcmPredictor, FcmPredictor, HashFunction, HybridPredictor,
    PerfectMeta, StrideOccupancyProfiler, StridePredictor, TaggedDfcmPredictor, ValuePredictor,
};
use proptest::prelude::*;

/// Streams of (4-byte-aligned pc, value) with small pc sets so tables see
/// real reuse.
fn arb_stream() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..64, 0u64..10_000), 1..600).prop_map(|v| {
        v.into_iter()
            .map(|(pc, value)| (0x40_0000 + pc * 4, value))
            .collect()
    })
}

proptest! {
    /// The defining relation of the DFCM (§3): it equals an FCM run over
    /// the per-PC *difference* stream, with the prediction re-based on the
    /// last value. The two-level machinery is shared, so this pins the
    /// differential transformation itself.
    #[test]
    fn dfcm_is_fcm_over_differences(stream in arb_stream()) {
        let mut dfcm = DfcmPredictor::builder().l1_bits(8).l2_bits(10).build().unwrap();
        let mut diff_fcm = FcmPredictor::builder().l1_bits(8).l2_bits(10).build().unwrap();
        let mut last: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for &(pc, value) in &stream {
            let prev = last.get(&pc).copied().unwrap_or(0);
            // The FCM over differences predicts the next diff; re-based it
            // must equal the DFCM's value prediction.
            let expected = prev.wrapping_add(diff_fcm.predict(pc));
            prop_assert_eq!(dfcm.predict(pc), expected);
            dfcm.update(pc, value);
            diff_fcm.update(pc, value.wrapping_sub(prev));
            last.insert(pc, value);
        }
    }

    /// The tagged DFCM's value stream is identical to the plain DFCM's;
    /// tagging only gates issue.
    #[test]
    fn tagged_dfcm_values_match_plain(stream in arb_stream()) {
        let mut plain = DfcmPredictor::builder().l1_bits(7).l2_bits(9).build().unwrap();
        let mut tagged = TaggedDfcmPredictor::builder().l1_bits(7).l2_bits(9).build().unwrap();
        for &(pc, value) in &stream {
            prop_assert_eq!(plain.access(pc, value).predicted, tagged.access(pc, value).predicted);
        }
    }

    /// The alias analyzer replicates its predictor exactly, for both
    /// analyzed kinds, on arbitrary streams.
    #[test]
    fn alias_analyzer_replicates_predictors(stream in arb_stream()) {
        let mut az_f = AliasAnalyzer::new(AnalyzedKind::Fcm, 7, 9).unwrap();
        let mut az_d = AliasAnalyzer::new(AnalyzedKind::Dfcm, 7, 9).unwrap();
        let mut fcm = FcmPredictor::builder().l1_bits(7).l2_bits(9).build().unwrap();
        let mut dfcm = DfcmPredictor::builder().l1_bits(7).l2_bits(9).build().unwrap();
        for &(pc, value) in &stream {
            prop_assert_eq!(az_f.access(pc, value).1, fcm.access(pc, value).correct);
            prop_assert_eq!(az_d.access(pc, value).1, dfcm.access(pc, value).correct);
        }
        let total: u64 = stream.len() as u64;
        prop_assert_eq!(az_f.breakdown().total(), total);
        prop_assert_eq!(az_d.breakdown().total(), total);
    }

    /// A perfect-meta hybrid is correct exactly when either component
    /// would have been.
    #[test]
    fn perfect_hybrid_is_component_union(stream in arb_stream()) {
        let mut a = StridePredictor::new(7);
        let mut b = FcmPredictor::builder().l1_bits(7).l2_bits(9).build().unwrap();
        let mut hybrid = HybridPredictor::new(
            StridePredictor::new(7),
            FcmPredictor::builder().l1_bits(7).l2_bits(9).build().unwrap(),
            PerfectMeta,
        );
        for &(pc, value) in &stream {
            let ca = a.access(pc, value).correct;
            let cb = b.access(pc, value).correct;
            prop_assert_eq!(hybrid.access(pc, value).correct, ca || cb);
        }
    }

    /// The occupancy profiler attributes exactly the accesses its internal
    /// stride detector predicted correctly — no more, no less.
    #[test]
    fn profiler_counts_equal_detector_hits(stream in arb_stream()) {
        let mut detector = StridePredictor::new(10);
        let expected: u64 = stream
            .iter()
            .map(|&(pc, v)| u64::from(detector.access(pc, v).correct))
            .sum();
        let fcm = FcmPredictor::builder().l1_bits(7).l2_bits(9).build().unwrap();
        let mut profiler = StrideOccupancyProfiler::new(fcm, 10);
        for &(pc, v) in &stream {
            profiler.access(pc, v);
        }
        prop_assert_eq!(profiler.stats().total_stride_accesses(), expected);
    }

    /// Cloned predictors evolve identically (no hidden shared or global
    /// state).
    #[test]
    fn clones_are_independent_but_identical(stream in arb_stream()) {
        let mut original = DfcmPredictor::builder().l1_bits(6).l2_bits(8).build().unwrap();
        // Pre-train, clone, then diverge one and check the other.
        for &(pc, value) in stream.iter().take(stream.len() / 2) {
            original.access(pc, value);
        }
        let mut clone = original.clone();
        let probe_pc = 0x40_0000;
        let before = original.predict(probe_pc);
        clone.update(0x40_0004, 999_999);
        clone.update(probe_pc, 123_456);
        prop_assert_eq!(original.predict(probe_pc), before, "clone write leaked");
        for &(pc, value) in &stream {
            let from_clone = original.clone().access(pc, value);
            let from_original = original.access(pc, value);
            prop_assert_eq!(from_original, from_clone, "clone must behave like the original");
        }
    }

    /// Every hash function keeps indices in range and is deterministic.
    #[test]
    fn hashes_in_range_and_deterministic(
        values in prop::collection::vec(any::<u64>(), 1..100),
        bits in 2u32..24,
    ) {
        for hash in [
            HashFunction::FsR5,
            HashFunction::FsShift { shift: 3 },
            HashFunction::FoldXor,
            HashFunction::Concat { order: 2 },
        ] {
            if hash.validate(bits).is_err() {
                continue;
            }
            let run = || {
                let mut h = 0u64;
                for &v in &values {
                    h = hash.fold_update(h, v, bits);
                    assert!(h < (1u64 << bits));
                }
                h
            };
            prop_assert_eq!(run(), run());
        }
    }

    /// Storage accounting is strictly monotone in both table exponents.
    #[test]
    fn storage_monotone_in_table_sizes(l1 in 1u32..14, l2 in 2u32..14) {
        let cost = |a: u32, b: u32| {
            DfcmPredictor::builder()
                .l1_bits(a)
                .l2_bits(b)
                .build()
                .unwrap()
                .storage()
                .total_bits()
        };
        prop_assert!(cost(l1 + 1, l2) > cost(l1, l2));
        prop_assert!(cost(l1, l2 + 1) > cost(l1, l2));
    }
}
