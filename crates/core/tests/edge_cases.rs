//! Edge-case tests for the predictor crate: boundary geometries, extreme
//! values, and wrapper corner cases.

use dfcm::{
    ClassifiedPredictor, DelayedUpdate, DfcmPredictor, FcmPredictor, HashFunction,
    InstructionClass, LastValuePredictor, SpeculativeDfcm, StridePredictor, TaggedDfcmPredictor,
    ValuePredictor,
};

#[test]
fn single_entry_tables_work() {
    // l1_bits = 0 is a legal degenerate geometry: one shared history.
    let mut p = FcmPredictor::builder()
        .l1_bits(0)
        .l2_bits(1)
        .build()
        .unwrap();
    for i in 0..100u64 {
        p.access(i * 4, i % 2);
    }
    let mut d = DfcmPredictor::builder()
        .l1_bits(0)
        .l2_bits(1)
        .build()
        .unwrap();
    for i in 0..100u64 {
        d.access(i * 4, i);
    }
    // A 2-entry L2 with a single stride collapses perfectly even here.
    assert!(d.access(0, 100).correct);
}

#[test]
fn extreme_values_do_not_disturb_tables() {
    let mut p = DfcmPredictor::builder()
        .l1_bits(4)
        .l2_bits(6)
        .build()
        .unwrap();
    for v in [0u64, u64::MAX, 1, u64::MAX - 1, u64::MAX / 2] {
        p.access(0x40, v);
    }
    // Wrapping diffs: a MAX..0 stride of +1 is learnable.
    let mut q = DfcmPredictor::builder()
        .l1_bits(4)
        .l2_bits(6)
        .build()
        .unwrap();
    let misses = (0..20u64)
        .map(|i| u64::MAX.wrapping_add(i))
        .filter(|&v| !q.access(0x40, v).correct)
        .count();
    assert!(
        misses <= 4,
        "wrap-around stride must be learnable: {misses}"
    );
}

#[test]
fn delayed_update_flush_preserves_program_order() {
    let mut p = DelayedUpdate::new(LastValuePredictor::new(4), 16);
    p.update(0x40, 1);
    p.update(0x40, 2);
    p.update(0x40, 3);
    p.flush();
    // The *last* update in program order must win.
    assert_eq!(p.predict(0x40), 3);
}

#[test]
fn delay_longer_than_trace_never_updates() {
    let mut p = DelayedUpdate::new(LastValuePredictor::new(4), 1_000_000);
    for i in 0..100u64 {
        p.access(0x40, i);
    }
    assert_eq!(p.predict(0x40), 0, "no update should have landed");
}

#[test]
fn speculative_dfcm_drain_is_idempotent() {
    let mut p = SpeculativeDfcm::builder()
        .l1_bits(4)
        .l2_bits(8)
        .delay(16)
        .build()
        .unwrap();
    for i in 0..10u64 {
        p.access(0x40, 2 * i);
    }
    p.drain();
    let after_first = p.predict(0x40);
    p.drain();
    assert_eq!(p.predict(0x40), after_first);
}

#[test]
fn tagged_dfcm_accepts_max_tag_width() {
    let mut p = TaggedDfcmPredictor::builder()
        .l1_bits(4)
        .l2_bits(8)
        .tag_bits(16)
        .build()
        .unwrap();
    for i in 0..50u64 {
        p.access(0x40, 4 * i);
    }
    assert!(p.predict_confident(0x40).confident);
}

#[test]
fn classified_predictor_tie_breaks_deterministically() {
    // A constant stream: LVP, stride and FCM all end up perfect during the
    // trial; the assignment must be deterministic (first maximum wins).
    let run = || {
        let mut p = ClassifiedPredictor::builder().build().unwrap();
        for _ in 0..40 {
            p.access(0x40, 9);
        }
        p.class_of(0x40)
    };
    assert_eq!(run(), run());
    assert_eq!(run(), InstructionClass::LastValue);
}

#[test]
fn concat_hash_order_one_degenerates_to_value_index() {
    // order 1: the index is just the low bits of the newest value.
    let h = HashFunction::Concat { order: 1 };
    assert_eq!(h.fold_update(0x3FF, 0xAB, 8), 0xAB);
}

#[test]
fn predictors_tolerate_misaligned_pcs() {
    // The harness always passes 4-aligned PCs, but the API accepts any
    // u64; odd PCs must not panic (they just share entries with their
    // aligned neighbours).
    for pc in [1u64, 2, 3, u64::MAX] {
        let mut p = StridePredictor::new(4);
        p.access(pc, 5);
        let mut q = DfcmPredictor::builder()
            .l1_bits(4)
            .l2_bits(6)
            .build()
            .unwrap();
        q.access(pc, 5);
    }
}

#[test]
fn name_strings_are_parseable_labels() {
    // Names feed reports and CSVs. Commas are fine (the CSV writer
    // quotes them), but newlines would break row structure.
    let names = [
        LastValuePredictor::new(4).name(),
        StridePredictor::new(4).name(),
        FcmPredictor::builder().build().unwrap().name(),
        DfcmPredictor::builder().build().unwrap().name(),
        TaggedDfcmPredictor::builder().build().unwrap().name(),
        SpeculativeDfcm::builder().build().unwrap().name(),
        ClassifiedPredictor::builder().build().unwrap().name(),
    ];
    for name in names {
        assert!(!name.contains('\n'), "{name}");
        assert!(!name.is_empty());
    }
}
