//! Table-usage instrumentation: opt-in semantics, occupancy/write
//! accounting, and agreement between the embedded alias analyzer and
//! the predictor's own accuracy.

use dfcm::{
    AliasClass, DfcmPredictor, FcmPredictor, LastValuePredictor, StridePredictor, StrideWidth,
    TwoDeltaStridePredictor, ValuePredictor,
};

#[test]
fn stats_are_off_by_default_everywhere() {
    let predictors: Vec<Box<dyn ValuePredictor>> = vec![
        Box::new(LastValuePredictor::new(4)),
        Box::new(StridePredictor::new(4)),
        Box::new(TwoDeltaStridePredictor::new(4)),
        Box::new(
            FcmPredictor::builder()
                .l1_bits(4)
                .l2_bits(8)
                .build()
                .unwrap(),
        ),
        Box::new(
            DfcmPredictor::builder()
                .l1_bits(4)
                .l2_bits(8)
                .build()
                .unwrap(),
        ),
    ];
    for mut p in predictors {
        p.access(0x40, 7);
        assert!(p.table_stats().is_none(), "{} reported stats", p.name());
    }
}

#[test]
fn enable_is_idempotent_and_counts_survive() {
    let mut p = LastValuePredictor::new(4);
    p.enable_table_stats();
    p.access(0x40, 1);
    p.enable_table_stats(); // must not reset counters
    let stats = p.table_stats().unwrap();
    assert_eq!(stats.tables[0].writes, 1);
}

#[test]
fn single_table_predictors_track_occupancy() {
    let mut p = StridePredictor::new(4);
    p.enable_table_stats();
    // Three distinct entries, one hit twice.
    for &(pc, v) in &[(0u64, 1u64), (4, 2), (8, 3), (0, 4)] {
        p.access(pc, v);
    }
    let stats = p.table_stats().unwrap();
    assert!(stats.alias.is_none());
    let t = &stats.tables[0];
    assert_eq!(t.name, "table");
    assert_eq!(t.entries, 16);
    assert_eq!(t.occupied, 3);
    assert_eq!(t.writes, 4);
    assert_eq!(t.overwrites, 1);
}

#[test]
fn two_level_predictors_report_both_tables() {
    let mut p = FcmPredictor::builder()
        .l1_bits(4)
        .l2_bits(8)
        .build()
        .unwrap();
    p.enable_table_stats();
    for i in 0..100u64 {
        p.access(0x10, i % 5);
    }
    let stats = p.table_stats().unwrap();
    let names: Vec<&str> = stats.tables.iter().map(|t| t.name).collect();
    assert_eq!(names, vec!["l1", "l2"]);
    // One static instruction: exactly one l1 entry in use.
    assert_eq!(stats.tables[0].occupied, 1);
    assert_eq!(stats.tables[0].writes, 100);
    // The repeating pattern visits a handful of histories.
    assert!(stats.tables[1].occupied >= 2);
    assert!(stats.tables[1].occupied <= 16);
}

#[test]
fn alias_breakdown_reconciles_with_accuracy() {
    // The embedded analyzer replicates the predictor from the same cold
    // state, so its per-class counts must sum to the access count and
    // its correct-count must equal the predictor's own hits.
    for spec in ["fcm", "dfcm"] {
        let mut p: Box<dyn ValuePredictor> = match spec {
            "fcm" => Box::new(
                FcmPredictor::builder()
                    .l1_bits(5)
                    .l2_bits(9)
                    .build()
                    .unwrap(),
            ),
            _ => Box::new(
                DfcmPredictor::builder()
                    .l1_bits(5)
                    .l2_bits(9)
                    .build()
                    .unwrap(),
            ),
        };
        p.enable_table_stats();
        let mut hits = 0u64;
        let mut total = 0u64;
        for i in 0..4000u64 {
            let pc = (i * 7) % 96;
            let v = (i % 9).wrapping_mul(pc + 1);
            hits += u64::from(p.access(pc, v).correct);
            total += 1;
        }
        let alias = p.table_stats().unwrap().alias.unwrap();
        assert_eq!(alias.total(), total, "{spec}: totals must reconcile");
        let correct: u64 = AliasClass::ALL
            .iter()
            .map(|&c| alias.class_correct(c))
            .sum();
        assert_eq!(correct, hits, "{spec}: correct counts must reconcile");
    }
}

#[test]
fn truncated_dfcm_tracks_tables_but_not_aliasing() {
    let mut p = DfcmPredictor::builder()
        .l1_bits(4)
        .l2_bits(8)
        .stride_width(StrideWidth::Bits(8))
        .build()
        .unwrap();
    p.enable_table_stats();
    for i in 0..50u64 {
        p.access(0, 3 * i);
    }
    let stats = p.table_stats().unwrap();
    assert_eq!(stats.tables.len(), 2);
    assert!(stats.tables[1].writes > 0);
    assert!(stats.alias.is_none());
}

#[test]
fn dfcm_stride_collapse_is_visible_in_l2_occupancy() {
    // The paper's core claim, observed through the instrumentation: a
    // stride pattern occupies far fewer DFCM level-2 entries than FCM
    // level-2 entries.
    let mut fcm = FcmPredictor::builder()
        .l1_bits(6)
        .l2_bits(12)
        .build()
        .unwrap();
    let mut dfcm = DfcmPredictor::builder()
        .l1_bits(6)
        .l2_bits(12)
        .build()
        .unwrap();
    fcm.enable_table_stats();
    dfcm.enable_table_stats();
    for i in 0..2000u64 {
        fcm.access(0x40, 5 * i);
        dfcm.access(0x40, 5 * i);
    }
    let fcm_l2 = p_l2(&fcm);
    let dfcm_l2 = p_l2(&dfcm);
    assert!(
        dfcm_l2 * 10 < fcm_l2,
        "dfcm should use far fewer l2 entries: dfcm={dfcm_l2} fcm={fcm_l2}"
    );
}

fn p_l2<P: ValuePredictor>(p: &P) -> u64 {
    p.table_stats().unwrap().tables[1].occupied
}

#[test]
fn boxed_predictor_forwards_instrumentation() {
    let mut p: Box<dyn ValuePredictor> = Box::new(LastValuePredictor::new(4));
    p.enable_table_stats();
    p.access(0, 1);
    assert_eq!(p.table_stats().unwrap().tables[0].writes, 1);
}
