use crate::counter::SaturatingCounter;
use crate::predictor::{AccessOutcome, ValuePredictor};
use crate::storage::StorageCost;

/// Which component of a [`HybridPredictor`] supplied the prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// The first component predictor.
    A,
    /// The second component predictor.
    B,
}

/// Selection mechanism of a [`HybridPredictor`] (§4.3, Figure 15).
///
/// A meta-predictor chooses, per prediction, which component to believe and
/// is trained afterwards with each component's correctness.
pub trait MetaPredictor {
    /// Chooses a component for the instruction at `pc`, given both
    /// component predictions.
    ///
    /// `actual` is `Some` when the harness already knows the outcome (the
    /// [`ValuePredictor::access`] path) — only oracle selectors such as
    /// [`PerfectMeta`] may use it; implementable selectors must ignore it
    /// and behave identically whether or not it is supplied.
    fn choose(&mut self, pc: u64, pred_a: u64, pred_b: u64, actual: Option<u64>) -> Component;

    /// Trains the selector with each component's correctness for `pc`.
    fn update(&mut self, pc: u64, a_correct: bool, b_correct: bool);

    /// Storage cost of the selector itself.
    fn storage(&self) -> StorageCost;

    /// Short label used in the hybrid's name.
    fn label(&self) -> String;
}

/// The paper's *perfect meta-predictor*: an unimplementable oracle that
/// always picks a correct component when one exists (§4.3).
///
/// The paper uses it as an upper bound: a real hybrid can never beat its
/// components arbitrated perfectly, so showing DFCM ≥ perfect
/// stride+FCM shows DFCM beats *any* stride+FCM hybrid of this type.
///
/// Only meaningful through [`ValuePredictor::access`], where the actual
/// value is available at selection time; a bare
/// [`predict`](ValuePredictor::predict) falls back to component A.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfectMeta;

impl MetaPredictor for PerfectMeta {
    fn choose(&mut self, _pc: u64, pred_a: u64, pred_b: u64, actual: Option<u64>) -> Component {
        match actual {
            Some(v) if pred_a != v && pred_b == v => Component::B,
            _ => Component::A,
        }
    }

    fn update(&mut self, _pc: u64, _a_correct: bool, _b_correct: bool) {}

    fn storage(&self) -> StorageCost {
        // An oracle has no implementable storage; report zero and let the
        // report label it as an upper bound.
        StorageCost::new()
    }

    fn label(&self) -> String {
        "perfect".to_owned()
    }
}

/// A realizable meta-predictor: a table of saturating counters indexed by
/// program counter, stepped towards whichever component was correct.
///
/// This is the "typically a set of saturating counters, indexed by the
/// program counter" selector the paper describes for hybrid predictors.
#[derive(Debug, Clone)]
pub struct CounterMeta {
    counters: Vec<SaturatingCounter>,
    mask: usize,
    bits: u32,
    counter_bits: u32,
}

impl CounterMeta {
    /// Creates a selector with `2^bits` two-bit counters (counter value
    /// high ⇒ use component B).
    ///
    /// # Panics
    ///
    /// Panics if `bits` exceeds 30.
    pub fn new(bits: u32) -> Self {
        Self::with_counter_bits(bits, 2)
    }

    /// As [`new`](CounterMeta::new) with `counter_bits`-wide counters.
    ///
    /// # Panics
    ///
    /// Panics if `bits` exceeds 30 or `counter_bits` is not in `1..=15`.
    pub fn with_counter_bits(bits: u32, counter_bits: u32) -> Self {
        assert!(bits <= 30, "table exponent must be <= 30, got {bits}");
        CounterMeta {
            counters: vec![SaturatingCounter::new(counter_bits, 1, 1); 1 << bits],
            mask: (1usize << bits) - 1,
            bits,
            counter_bits,
        }
    }
}

impl MetaPredictor for CounterMeta {
    fn choose(&mut self, pc: u64, _pred_a: u64, _pred_b: u64, _actual: Option<u64>) -> Component {
        if self.counters[crate::predictor::pc_index(pc, self.mask)].is_high() {
            Component::B
        } else {
            Component::A
        }
    }

    fn update(&mut self, pc: u64, a_correct: bool, b_correct: bool) {
        let counter = &mut self.counters[crate::predictor::pc_index(pc, self.mask)];
        match (a_correct, b_correct) {
            (true, false) => counter.decrement(),
            (false, true) => counter.increment(),
            // Both right or both wrong: no preference signal.
            _ => {}
        }
    }

    fn storage(&self) -> StorageCost {
        StorageCost::new().with(
            "meta counters",
            self.counters.len() as u64 * self.counter_bits as u64,
        )
    }

    fn label(&self) -> String {
        format!("meta(2^{})", self.bits)
    }
}

/// A hybrid of two component predictors arbitrated by a [`MetaPredictor`]
/// (§4.3, Figure 15).
///
/// Both components are always trained with the actual value; the selector
/// is trained with which of them was correct.
///
/// ```
/// use dfcm::{FcmPredictor, HybridPredictor, PerfectMeta, StridePredictor, ValuePredictor};
///
/// # fn main() -> Result<(), dfcm::ConfigError> {
/// let fcm = FcmPredictor::builder().l1_bits(10).l2_bits(10).build()?;
/// let stride = StridePredictor::new(10);
/// let mut hybrid = HybridPredictor::new(stride, fcm, PerfectMeta);
/// // The oracle is right whenever either component is right.
/// let mut correct = 0;
/// for i in 0..100u64 {
///     if hybrid.access(0x40, 3 * i).correct {
///         correct += 1;
///     }
/// }
/// assert!(correct >= 98); // the stride component carries this pattern
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HybridPredictor<A, B, M> {
    a: A,
    b: B,
    meta: M,
}

impl<A: ValuePredictor, B: ValuePredictor, M: MetaPredictor> HybridPredictor<A, B, M> {
    /// Combines two predictors under a selector.
    pub fn new(a: A, b: B, meta: M) -> Self {
        HybridPredictor { a, b, meta }
    }

    /// The first component.
    pub fn component_a(&self) -> &A {
        &self.a
    }

    /// The second component.
    pub fn component_b(&self) -> &B {
        &self.b
    }
}

impl<A: ValuePredictor, B: ValuePredictor, M: MetaPredictor> ValuePredictor
    for HybridPredictor<A, B, M>
{
    fn predict(&mut self, pc: u64) -> u64 {
        let pa = self.a.predict(pc);
        let pb = self.b.predict(pc);
        match self.meta.choose(pc, pa, pb, None) {
            Component::A => pa,
            Component::B => pb,
        }
    }

    fn update(&mut self, pc: u64, actual: u64) {
        let a_correct = self.a.predict(pc) == actual;
        let b_correct = self.b.predict(pc) == actual;
        self.meta.update(pc, a_correct, b_correct);
        self.a.update(pc, actual);
        self.b.update(pc, actual);
    }

    fn access(&mut self, pc: u64, actual: u64) -> AccessOutcome {
        let pa = self.a.predict(pc);
        let pb = self.b.predict(pc);
        let predicted = match self.meta.choose(pc, pa, pb, Some(actual)) {
            Component::A => pa,
            Component::B => pb,
        };
        self.meta.update(pc, pa == actual, pb == actual);
        self.a.update(pc, actual);
        self.b.update(pc, actual);
        AccessOutcome {
            predicted,
            correct: predicted == actual,
        }
    }

    fn storage(&self) -> StorageCost {
        self.a
            .storage()
            .with_cost(self.b.storage())
            .with_cost(self.meta.storage())
    }

    fn name(&self) -> String {
        format!(
            "hybrid[{}+{},{}]",
            self.a.name(),
            self.b.name(),
            self.meta.label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fcm::FcmPredictor;
    use crate::lvp::LastValuePredictor;
    use crate::stride::StridePredictor;

    #[test]
    fn perfect_meta_correct_iff_either_component_correct() {
        let mut hybrid = HybridPredictor::new(
            StridePredictor::new(8),
            FcmPredictor::builder()
                .l1_bits(8)
                .l2_bits(10)
                .build()
                .unwrap(),
            PerfectMeta,
        );
        let mut stride = StridePredictor::new(8);
        let mut fcm = FcmPredictor::builder()
            .l1_bits(8)
            .l2_bits(10)
            .build()
            .unwrap();
        // Mixed workload: stride pattern on one pc, context pattern on another.
        let pattern = [9u64, 2, 7, 7, 1];
        for i in 0..200u64 {
            let v1 = 3 * i;
            let v2 = pattern[(i % 5) as usize];
            for (pc, v) in [(0x10u64, v1), (0x20, v2)] {
                let sa = stride.access(pc, v).correct;
                let fa = fcm.access(pc, v).correct;
                let h = hybrid.access(pc, v).correct;
                assert_eq!(
                    h,
                    sa || fa,
                    "oracle must match union of components at i={i}"
                );
            }
        }
    }

    #[test]
    fn perfect_meta_without_actual_falls_back_to_a() {
        let mut meta = PerfectMeta;
        assert_eq!(meta.choose(0, 1, 2, None), Component::A);
        assert_eq!(meta.choose(0, 1, 2, Some(2)), Component::B);
        assert_eq!(meta.choose(0, 1, 2, Some(1)), Component::A);
        assert_eq!(meta.choose(0, 1, 2, Some(3)), Component::A);
    }

    #[test]
    fn counter_meta_learns_better_component() {
        let mut meta = CounterMeta::new(4);
        // Component B keeps being right, A wrong.
        for _ in 0..4 {
            meta.update(5, false, true);
        }
        assert_eq!(meta.choose(5, 0, 0, None), Component::B);
        // Reverse the trend.
        for _ in 0..8 {
            meta.update(5, true, false);
        }
        assert_eq!(meta.choose(5, 0, 0, None), Component::A);
    }

    #[test]
    fn counter_meta_hybrid_tracks_stride_pattern() {
        let fcm = FcmPredictor::builder()
            .l1_bits(6)
            .l2_bits(8)
            .build()
            .unwrap();
        let mut hybrid = HybridPredictor::new(fcm, StridePredictor::new(6), CounterMeta::new(6));
        // A long fresh stride: FCM flounders (keeps seeing new histories),
        // the stride component nails it, the meta must learn to pick B.
        let correct = (0..300u64)
            .filter(|&i| hybrid.access(0, 17 * i).correct)
            .count();
        assert!(correct > 280, "got {correct}");
    }

    #[test]
    fn components_always_trained() {
        let mut hybrid = HybridPredictor::new(
            LastValuePredictor::new(4),
            StridePredictor::new(4),
            PerfectMeta,
        );
        hybrid.access(1, 42);
        assert_eq!(hybrid.component_a().clone().predict(1), 42);
        // The cold stride component learned stride 42, so it predicts 84.
        assert_eq!(hybrid.component_b().clone().predict(1), 84);
    }

    #[test]
    fn storage_sums_components() {
        let a = LastValuePredictor::new(4);
        let b = StridePredictor::new(4);
        let expected = a.storage().total_bits() + b.storage().total_bits();
        let hybrid = HybridPredictor::new(a, b, PerfectMeta);
        assert_eq!(hybrid.storage().total_bits(), expected);
        let hybrid = HybridPredictor::new(
            LastValuePredictor::new(4),
            StridePredictor::new(4),
            CounterMeta::new(4),
        );
        assert_eq!(hybrid.storage().total_bits(), expected + 16 * 2);
    }

    #[test]
    fn name_mentions_components_and_meta() {
        let hybrid = HybridPredictor::new(
            LastValuePredictor::new(4),
            StridePredictor::new(4),
            PerfectMeta,
        );
        let name = hybrid.name();
        assert!(name.contains("lvp"), "{name}");
        assert!(name.contains("stride"), "{name}");
        assert!(name.contains("perfect"), "{name}");
    }

    #[test]
    fn predict_update_path_matches_access_for_counter_meta() {
        // For realizable selectors, access() must behave exactly like
        // predict-then-update.
        let mk = || {
            HybridPredictor::new(
                StridePredictor::new(6),
                FcmPredictor::builder()
                    .l1_bits(6)
                    .l2_bits(8)
                    .build()
                    .unwrap(),
                CounterMeta::new(6),
            )
        };
        let mut via_access = mk();
        let mut via_split = mk();
        let pattern = [5u64, 5, 9, 13, 2, 2, 2, 40];
        for i in 0..200u64 {
            let v = pattern[(i % 8) as usize].wrapping_mul(i / 8 + 1);
            let out1 = via_access.access(7, v);
            let predicted = via_split.predict(7);
            via_split.update(7, v);
            assert_eq!(out1.predicted, predicted, "i={i}");
        }
    }
}
