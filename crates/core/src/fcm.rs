use crate::alias::{AliasAnalyzer, AnalyzedKind};
use crate::error::{check_table_bits, ConfigError};
use crate::hash::HashFunction;
use crate::predictor::{AccessOutcome, L2Indexed, ValuePredictor};
use crate::storage::StorageCost;
use crate::table_stats::{TableStats, TableTracker};
use crate::DEFAULT_VALUE_BITS;

/// Opt-in instrumentation for a two-level predictor: usage trackers for
/// both tables plus a replicated [`AliasAnalyzer`] classifying every
/// update into the paper's §4.2 taxonomy. The class of the most recent
/// update is kept so per-access observers can read it back without a
/// second analyzer pass.
#[derive(Debug, Clone)]
pub(crate) struct TwoLevelInstrumentation {
    pub(crate) l1: TableTracker,
    pub(crate) l2: TableTracker,
    pub(crate) analyzer: Option<AliasAnalyzer>,
    pub(crate) last_class: Option<crate::AliasClass>,
}

/// The two-level finite context method predictor (Sazeides & Smith; §2.3).
///
/// The level-1 table, indexed by program counter, stores a *hashed history*
/// of the values recently produced by that instruction. The hashed history
/// indexes the level-2 table, which stores the value most likely to follow
/// that context. On update, the actual value is written to the level-2
/// entry the prediction was read from, and the level-1 history is advanced
/// incrementally through the hash function (Figure 2 of the paper).
///
/// The default hash is Sazeides' FS R-5 ([`HashFunction::FsR5`]), giving a
/// history order of ⌈`l2_bits`/5⌉ exactly as in the paper's evaluation.
///
/// ```
/// use dfcm::{FcmPredictor, ValuePredictor};
///
/// # fn main() -> Result<(), dfcm::ConfigError> {
/// let mut fcm = FcmPredictor::builder().l1_bits(8).l2_bits(12).build()?;
/// // A repeating non-stride pattern is exactly what FCM is good at.
/// let pattern = [3u64, 1, 4, 1, 5, 9, 2, 6];
/// for _ in 0..3 {
///     for &v in &pattern {
///         fcm.access(0x400, v);
///     }
/// }
/// let correct = pattern.iter().filter(|&&v| fcm.access(0x400, v).correct).count();
/// assert_eq!(correct, pattern.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FcmPredictor {
    /// Hashed history per static instruction.
    l1: Vec<u64>,
    /// Predicted value per history.
    l2: Vec<u64>,
    l1_mask: usize,
    l1_bits: u32,
    l2_bits: u32,
    hash: HashFunction,
    value_bits: u32,
    stats: Option<TwoLevelInstrumentation>,
}

/// Builder for [`FcmPredictor`]; obtained from [`FcmPredictor::builder`].
#[derive(Debug, Clone)]
pub struct FcmBuilder {
    l1_bits: u32,
    l2_bits: u32,
    hash: HashFunction,
    value_bits: u32,
}

impl Default for FcmBuilder {
    fn default() -> Self {
        FcmBuilder {
            l1_bits: 12,
            l2_bits: 12,
            hash: HashFunction::FsR5,
            value_bits: DEFAULT_VALUE_BITS,
        }
    }
}

impl FcmBuilder {
    /// Sets the level-1 table to `2^bits` entries (default 12).
    pub fn l1_bits(&mut self, bits: u32) -> &mut Self {
        self.l1_bits = bits;
        self
    }

    /// Sets the level-2 table to `2^bits` entries (default 12).
    pub fn l2_bits(&mut self, bits: u32) -> &mut Self {
        self.l2_bits = bits;
        self
    }

    /// Selects the history hash function (default [`HashFunction::FsR5`]).
    pub fn hash(&mut self, hash: HashFunction) -> &mut Self {
        self.hash = hash;
        self
    }

    /// Sets the architectural value width used for storage accounting
    /// (default 32, matching the paper's MIPS traces).
    pub fn value_bits(&mut self, bits: u32) -> &mut Self {
        self.value_bits = bits;
        self
    }

    /// Builds the predictor.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if a table exponent exceeds 30, the value
    /// width is outside `1..=64`, or the hash cannot produce `l2_bits`-bit
    /// indices.
    pub fn build(&self) -> Result<FcmPredictor, ConfigError> {
        check_table_bits("l1_bits", self.l1_bits)?;
        check_table_bits("l2_bits", self.l2_bits)?;
        if !(1..=64).contains(&self.value_bits) {
            return Err(ConfigError::Width {
                parameter: "value_bits",
                value: self.value_bits,
                min: 1,
                max: 64,
            });
        }
        self.hash.validate(self.l2_bits)?;
        Ok(FcmPredictor {
            l1: vec![0; 1 << self.l1_bits],
            l2: vec![0; 1 << self.l2_bits],
            l1_mask: (1usize << self.l1_bits) - 1,
            l1_bits: self.l1_bits,
            l2_bits: self.l2_bits,
            hash: self.hash,
            value_bits: self.value_bits,
            stats: None,
        })
    }
}

impl FcmPredictor {
    /// Starts building an FCM predictor.
    pub fn builder() -> FcmBuilder {
        FcmBuilder::default()
    }

    /// Level-1 table size exponent.
    pub fn l1_bits(&self) -> u32 {
        self.l1_bits
    }

    /// Level-2 table size exponent.
    pub fn l2_bits(&self) -> u32 {
        self.l2_bits
    }

    /// The hash function used to maintain histories.
    pub fn hash(&self) -> HashFunction {
        self.hash
    }

    /// The history order implied by the hash and level-2 size.
    pub fn order(&self) -> u32 {
        self.hash.order(self.l2_bits)
    }

    /// The hashed history currently stored for `pc`.
    pub fn history(&self, pc: u64) -> u64 {
        self.l1[crate::predictor::pc_index(pc, self.l1_mask)]
    }

    /// Serializes the mutable table state (not the configuration) as a
    /// flat word vector: the level-1 hashed histories, then the level-2
    /// values, each in index order.
    pub fn state_words(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(self.l1.len() + self.l2.len());
        words.extend_from_slice(&self.l1);
        words.extend_from_slice(&self.l2);
        words
    }

    /// Restores state captured by
    /// [`state_words`](FcmPredictor::state_words) into an identically
    /// configured predictor.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::State`](crate::ConfigError) when the word
    /// count does not match, or a level-1 history is not a valid level-2
    /// index — histories index the level-2 table directly, so an
    /// out-of-range word (possible only in a corrupt or hostile blob)
    /// would otherwise panic the next prediction. A failed load leaves
    /// the predictor unchanged.
    pub fn load_state_words(&mut self, words: &[u64]) -> Result<(), crate::ConfigError> {
        let (n1, n2) = (self.l1.len(), self.l2.len());
        if words.len() != n1 + n2 {
            return Err(crate::ConfigError::State {
                reason: format!(
                    "fcm state holds {} words, tables need {}",
                    words.len(),
                    n1 + n2
                ),
            });
        }
        let (l1, l2) = words.split_at(n1);
        if let Some((i, &history)) = l1.iter().enumerate().find(|(_, &h)| h >= n2 as u64) {
            return Err(crate::ConfigError::State {
                reason: format!("fcm history[{i}] = {history} is not a level-2 index (< {n2})"),
            });
        }
        self.l1.copy_from_slice(l1);
        self.l2.copy_from_slice(l2);
        Ok(())
    }

    #[inline]
    fn l1_index(&self, pc: u64) -> usize {
        crate::predictor::pc_index(pc, self.l1_mask)
    }
}

impl ValuePredictor for FcmPredictor {
    fn predict(&mut self, pc: u64) -> u64 {
        self.l2[self.l1[self.l1_index(pc)] as usize]
    }

    fn update(&mut self, pc: u64, actual: u64) {
        let i1 = self.l1_index(pc);
        let history = self.l1[i1];
        self.l2[history as usize] = actual;
        self.l1[i1] = self.hash.fold_update(history, actual, self.l2_bits);
        if let Some(stats) = &mut self.stats {
            stats.l1.record(i1);
            stats.l2.record(history as usize);
            if let Some(analyzer) = &mut stats.analyzer {
                let (class, _) = analyzer.access(pc, actual);
                stats.last_class = Some(class);
            }
        }
    }

    // Fused predict+update: the shared L1 index (and the history read off
    // it) is computed once per record instead of once in `predict` and
    // again in `update`. Bit-identical to the default predict-then-update.
    #[inline]
    fn access(&mut self, pc: u64, actual: u64) -> AccessOutcome {
        let i1 = self.l1_index(pc);
        let history = self.l1[i1];
        let predicted = self.l2[history as usize];
        self.l2[history as usize] = actual;
        self.l1[i1] = self.hash.fold_update(history, actual, self.l2_bits);
        if let Some(stats) = &mut self.stats {
            stats.l1.record(i1);
            stats.l2.record(history as usize);
            if let Some(analyzer) = &mut stats.analyzer {
                let (class, _) = analyzer.access(pc, actual);
                stats.last_class = Some(class);
            }
        }
        AccessOutcome {
            predicted,
            correct: predicted == actual,
        }
    }

    fn storage(&self) -> StorageCost {
        StorageCost::new()
            .with(
                "L1 hashed histories",
                self.l1.len() as u64 * self.l2_bits as u64,
            )
            .with("L2 values", self.l2.len() as u64 * self.value_bits as u64)
    }

    fn name(&self) -> String {
        format!(
            "fcm(l1=2^{},l2=2^{},{})",
            self.l1_bits,
            self.l2_bits,
            self.hash.label()
        )
    }

    fn enable_table_stats(&mut self) {
        if self.stats.is_none() {
            self.stats = Some(TwoLevelInstrumentation {
                l1: TableTracker::new("l1", self.l1.len()),
                l2: TableTracker::new("l2", self.l2.len()),
                analyzer: Some(
                    AliasAnalyzer::with_hash(
                        AnalyzedKind::Fcm,
                        self.l1_bits,
                        self.l2_bits,
                        self.hash,
                    )
                    .expect("predictor config was already validated"),
                ),
                last_class: None,
            });
        }
    }

    fn table_stats(&self) -> Option<TableStats> {
        self.stats.as_ref().map(|s| TableStats {
            tables: vec![s.l1.usage(), s.l2.usage()],
            alias: s.analyzer.as_ref().map(AliasAnalyzer::breakdown),
        })
    }

    fn last_alias_class(&self) -> Option<crate::AliasClass> {
        self.stats.as_ref().and_then(|s| s.last_class)
    }
}

impl L2Indexed for FcmPredictor {
    fn l2_index(&self, pc: u64) -> usize {
        self.l1[crate::predictor::pc_index(pc, self.l1_mask)] as usize
    }

    fn l2_entries(&self) -> usize {
        self.l2.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fcm(l1: u32, l2: u32) -> FcmPredictor {
        FcmPredictor::builder()
            .l1_bits(l1)
            .l2_bits(l2)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert!(FcmPredictor::builder().l1_bits(31).build().is_err());
        assert!(FcmPredictor::builder().l2_bits(31).build().is_err());
        assert!(FcmPredictor::builder().value_bits(0).build().is_err());
        assert!(FcmPredictor::builder()
            .hash(HashFunction::Concat { order: 5 })
            .l2_bits(12)
            .build()
            .is_err());
        assert!(FcmPredictor::builder().build().is_ok());
    }

    #[test]
    fn learns_repeating_context_pattern() {
        let mut p = fcm(6, 12);
        let pattern = [10u64, 20, 30, 10, 50, 60];
        for _ in 0..4 {
            for &v in &pattern {
                p.access(0, v);
            }
        }
        let correct = pattern.iter().filter(|&&v| p.access(0, v).correct).count();
        assert_eq!(correct, pattern.len());
    }

    #[test]
    fn stride_pattern_needs_one_full_repetition() {
        // Figure 4: an FCM treats a stride pattern as context-based, so the
        // first pass over a fresh stride mispredicts while the table fills.
        let mut p = fcm(6, 16);
        let first: usize = (0..32u64).filter(|&v| p.access(0, v).correct).count();
        assert!(
            first <= 2,
            "first pass should be nearly all wrong, got {first} correct"
        );
        // After wrapping around, the learned contexts repeat.
        let second: usize = (0..32u64).filter(|&v| p.access(0, v).correct).count();
        assert!(
            second >= 29,
            "second pass should be nearly perfect, got {second}"
        );
    }

    #[test]
    fn update_writes_level2_at_pre_update_history() {
        let mut p = fcm(4, 8);
        let h0 = p.history(3);
        p.update(3, 77);
        // The value must be retrievable through the *old* history index.
        assert_eq!(p.l2[h0 as usize], 77);
        // And the history must have advanced.
        assert_eq!(p.history(3), HashFunction::FsR5.fold_update(h0, 77, 8));
    }

    #[test]
    fn l2_index_tracks_history() {
        let mut p = fcm(4, 8);
        p.update(2, 5);
        assert_eq!(p.l2_index(2), p.history(2) as usize);
        assert_eq!(p.l2_entries(), 256);
    }

    #[test]
    fn storage_matches_paper_model() {
        // Paper §2.4: L1 stores only the hashed history (l2_bits wide);
        // L2 stores full 32-bit values.
        let p = fcm(16, 12);
        let bits = p.storage().total_bits();
        assert_eq!(bits, (1u64 << 16) * 12 + (1u64 << 12) * 32);
    }

    #[test]
    fn distinct_pcs_share_l2_but_not_l1() {
        let mut p = fcm(8, 12);
        // Train pattern on pc A; pc B with identical history should then
        // predict the same continuation (constructive l2_pc aliasing).
        for _ in 0..3 {
            for &v in &[7u64, 8, 9] {
                p.access(10, v);
            }
        }
        for &v in &[7u64, 8, 9] {
            p.access(20, v);
        }
        assert_eq!(p.predict(20), p.l2[p.history(20) as usize]);
    }

    #[test]
    fn order_reported_from_hash() {
        assert_eq!(fcm(4, 12).order(), 3);
        assert_eq!(fcm(4, 20).order(), 4);
    }

    #[test]
    fn name_mentions_config() {
        assert_eq!(fcm(16, 12).name(), "fcm(l1=2^16,l2=2^12,fs-r5)");
    }
}
