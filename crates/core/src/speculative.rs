use std::collections::VecDeque;

use crate::error::{check_table_bits, ConfigError};
use crate::hash::HashFunction;
use crate::predictor::ValuePredictor;
use crate::storage::StorageCost;
use crate::DEFAULT_VALUE_BITS;

/// A DFCM with *speculative history update* under delayed resolution —
/// the standard remedy for the degradation the paper measures in §4.5.
///
/// With plain delayed update ([`DelayedUpdate`](crate::DelayedUpdate)), a
/// static instruction recurring within the update latency predicts from
/// stale history and an established stride pattern mispredicts every
/// occurrence in flight. The speculative variant instead advances the
/// level-1 state (hashed history and last value) *at prediction time*
/// using its own prediction, and repairs on resolution:
///
/// * prediction: predict as usual, then speculatively fold the predicted
///   difference into the history and adopt the predicted value as `last`;
///   remember the pre-speculation state in a small in-flight queue.
/// * resolution (after `delay` further predictions): write the actual
///   difference to the level-2 entry the prediction used. If the
///   prediction was wrong, squash: rebuild the instruction's level-1
///   state from the resolution (the hardware analogue of recovering
///   predictor state on a value misprediction).
///
/// On a steady stride, the speculative history is always correct, so the
/// predictor keeps hitting at any delay — recovering almost all of the
/// accuracy that plain delayed update loses (`dfcm-repro specupdate`).
///
/// ```
/// use dfcm::{SpeculativeDfcm, ValuePredictor};
///
/// # fn main() -> Result<(), dfcm::ConfigError> {
/// let mut p = SpeculativeDfcm::builder().l1_bits(8).l2_bits(10).delay(64).build()?;
/// // A tight stride loop far shorter than the update latency. Nothing can
/// // resolve before the first value returns, so warmup costs ~delay
/// // misses — but after that, speculative histories hide the delay
/// // completely (plain delayed update would keep missing every lap).
/// let misses = (0..500u64).filter(|&i| !p.access(0x40, 3 * i).correct).count();
/// assert!(misses < 64 + 10, "only warmup misses expected: {misses}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SpeculativeDfcm {
    /// Speculative (fetch-side) level-1 state, advanced per prediction.
    last: Vec<u64>,
    hist: Vec<u64>,
    /// Architectural (retirement-side) level-1 state, advanced per
    /// resolution — an immediate-update DFCM delayed in time.
    arch_last: Vec<u64>,
    arch_hist: Vec<u64>,
    l2: Vec<u64>,
    in_flight: VecDeque<InFlight>,
    l1_mask: usize,
    l1_bits: u32,
    l2_bits: u32,
    hash: HashFunction,
    delay: usize,
    value_bits: u32,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    i1: usize,
    predicted: u64,
    actual: u64,
}

/// Builder for [`SpeculativeDfcm`].
#[derive(Debug, Clone)]
pub struct SpeculativeDfcmBuilder {
    l1_bits: u32,
    l2_bits: u32,
    hash: HashFunction,
    delay: usize,
}

impl Default for SpeculativeDfcmBuilder {
    fn default() -> Self {
        SpeculativeDfcmBuilder {
            l1_bits: 12,
            l2_bits: 12,
            hash: HashFunction::FsR5,
            delay: 0,
        }
    }
}

impl SpeculativeDfcmBuilder {
    /// Sets the level-1 table to `2^bits` entries (default 12).
    pub fn l1_bits(&mut self, bits: u32) -> &mut Self {
        self.l1_bits = bits;
        self
    }

    /// Sets the level-2 table to `2^bits` entries (default 12).
    pub fn l2_bits(&mut self, bits: u32) -> &mut Self {
        self.l2_bits = bits;
        self
    }

    /// Selects the history hash (default FS R-5).
    pub fn hash(&mut self, hash: HashFunction) -> &mut Self {
        self.hash = hash;
        self
    }

    /// Sets the resolution delay in predictions (default 0 = immediate).
    pub fn delay(&mut self, delay: usize) -> &mut Self {
        self.delay = delay;
        self
    }

    /// Builds the predictor.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid table exponents or a hash that
    /// cannot produce `l2_bits`-bit indices.
    pub fn build(&self) -> Result<SpeculativeDfcm, ConfigError> {
        check_table_bits("l1_bits", self.l1_bits)?;
        check_table_bits("l2_bits", self.l2_bits)?;
        self.hash.validate(self.l2_bits)?;
        let l1 = 1usize << self.l1_bits;
        Ok(SpeculativeDfcm {
            last: vec![0; l1],
            hist: vec![0; l1],
            arch_last: vec![0; l1],
            arch_hist: vec![0; l1],
            l2: vec![0; 1 << self.l2_bits],
            in_flight: VecDeque::with_capacity(self.delay + 1),
            l1_mask: l1 - 1,
            l1_bits: self.l1_bits,
            l2_bits: self.l2_bits,
            hash: self.hash,
            delay: self.delay,
            value_bits: DEFAULT_VALUE_BITS,
        })
    }
}

impl SpeculativeDfcm {
    /// Starts building a speculative-update DFCM.
    pub fn builder() -> SpeculativeDfcmBuilder {
        SpeculativeDfcmBuilder::default()
    }

    /// The configured resolution delay.
    pub fn delay(&self) -> usize {
        self.delay
    }

    fn l1_index(&self, pc: u64) -> usize {
        crate::predictor::pc_index(pc, self.l1_mask)
    }

    fn resolve_oldest(&mut self) {
        let Some(f) = self.in_flight.pop_front() else {
            return;
        };
        // Train along the architectural (resolved) stream — the entry the
        // prediction read equals arch_hist whenever speculation was right.
        let i1 = f.i1;
        let actual_diff = f.actual.wrapping_sub(self.arch_last[i1]);
        self.l2[self.arch_hist[i1] as usize] = actual_diff;
        self.arch_hist[i1] = self
            .hash
            .fold_update(self.arch_hist[i1], actual_diff, self.l2_bits);
        self.arch_last[i1] = f.actual;
        if f.predicted != f.actual {
            // Squash and re-lock: restore this instruction's speculative
            // level-1 state from the architectural copy, then re-predict
            // through the still-in-flight younger occurrences of the same
            // entry — the analogue of re-fetching and re-predicting the
            // squashed instructions with repaired tables.
            let mut hist = self.arch_hist[i1];
            let mut last = self.arch_last[i1];
            for younger in &self.in_flight {
                if younger.i1 == i1 {
                    let diff = self.l2[hist as usize];
                    hist = self.hash.fold_update(hist, diff, self.l2_bits);
                    last = last.wrapping_add(diff);
                }
            }
            self.hist[i1] = hist;
            self.last[i1] = last;
        }
    }

    /// Resolves all in-flight predictions immediately (end of trace).
    pub fn drain(&mut self) {
        while !self.in_flight.is_empty() {
            self.resolve_oldest();
        }
    }
}

impl ValuePredictor for SpeculativeDfcm {
    fn predict(&mut self, pc: u64) -> u64 {
        let i1 = self.l1_index(pc);
        self.last[i1].wrapping_add(self.l2[self.hist[i1] as usize])
    }

    fn update(&mut self, pc: u64, actual: u64) {
        let i1 = self.l1_index(pc);
        let hist_before = self.hist[i1];
        let predicted_diff = self.l2[hist_before as usize];
        let predicted = self.last[i1].wrapping_add(predicted_diff);
        // Speculatively advance the level-1 state with the prediction.
        self.hist[i1] = self
            .hash
            .fold_update(hist_before, predicted_diff, self.l2_bits);
        self.last[i1] = predicted;
        self.in_flight.push_back(InFlight {
            i1,
            predicted,
            actual,
        });
        if self.in_flight.len() > self.delay {
            self.resolve_oldest();
        }
    }

    fn storage(&self) -> StorageCost {
        // Both the speculative (fetch-side) and architectural
        // (retirement-side) level-1 copies are real hardware state.
        let l1 = self.last.len() as u64;
        StorageCost::new()
            .with("L1 last values (2 copies)", 2 * l1 * self.value_bits as u64)
            .with(
                "L1 hashed histories (2 copies)",
                2 * l1 * self.l2_bits as u64,
            )
            .with(
                "L2 differences",
                self.l2.len() as u64 * self.value_bits as u64,
            )
    }

    fn name(&self) -> String {
        format!(
            "dfcm-spec(l1=2^{},l2=2^{},{})@d{}",
            self.l1_bits,
            self.l2_bits,
            self.hash.label(),
            self.delay
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delayed::DelayedUpdate;
    use crate::dfcm::DfcmPredictor;

    fn spec(delay: usize) -> SpeculativeDfcm {
        SpeculativeDfcm::builder()
            .l1_bits(8)
            .l2_bits(10)
            .delay(delay)
            .build()
            .unwrap()
    }

    #[test]
    fn zero_delay_matches_plain_dfcm() {
        // With immediate resolution, speculation is corrected before the
        // next prediction, so behaviour must equal the plain DFCM.
        let mut plain = DfcmPredictor::builder()
            .l1_bits(8)
            .l2_bits(10)
            .build()
            .unwrap();
        let mut speculative = spec(0);
        for i in 0..4000u64 {
            let pc = 4 * (i % 30);
            let v = (i * i) % 500;
            assert_eq!(
                plain.access(pc, v).predicted,
                speculative.access(pc, v).predicted,
                "i={i}"
            );
        }
    }

    #[test]
    fn hides_delay_on_steady_strides() {
        // Warmup costs ~delay misses (nothing resolves earlier); after
        // the first squash + re-lock the stride hits at any delay.
        let mut p = spec(64);
        let total = (0..2000u64)
            .filter(|&i| !p.access(0x40, 7 * i).correct)
            .count();
        assert!(total < 64 + 10, "{total}");
        let late = (2000..4000u64)
            .filter(|&i| !p.access(0x40, 7 * i).correct)
            .count();
        assert_eq!(late, 0, "steady state must be perfect");
    }

    #[test]
    fn beats_plain_delayed_update() {
        // Tight interleaved strides within the delay window: speculative
        // histories must clearly outperform stale ones.
        let run_spec = |delay: usize| {
            let mut p = spec(delay);
            let mut correct = 0u64;
            for i in 0..4000u64 {
                for pc in 0..4u64 {
                    correct += u64::from(p.access(pc * 4, 1000 * pc + 3 * i).correct);
                }
            }
            correct
        };
        let run_stale = |delay: usize| {
            let inner = DfcmPredictor::builder()
                .l1_bits(8)
                .l2_bits(10)
                .build()
                .unwrap();
            let mut p = DelayedUpdate::new(inner, delay);
            let mut correct = 0u64;
            for i in 0..4000u64 {
                for pc in 0..4u64 {
                    correct += u64::from(p.access(pc * 4, 1000 * pc + 3 * i).correct);
                }
            }
            correct
        };
        for delay in [16usize, 64, 256] {
            let speculative = run_spec(delay);
            let stale = run_stale(delay);
            assert!(
                speculative > stale + 1000,
                "delay {delay}: speculative {speculative} vs stale {stale}"
            );
        }
    }

    #[test]
    fn squash_recovers_after_pattern_change() {
        let mut p = spec(8);
        for i in 0..200u64 {
            p.access(0x40, 5 * i);
        }
        // Abrupt change to a new stride: some in-flight damage, then the
        // squash repairs state and the new stride is learned.
        let late_misses = (0..200u64)
            .map(|i| 1_000_000 + 11 * i)
            .enumerate()
            .filter(|&(j, v)| !p.access(0x40, v).correct && j > 30)
            .count();
        assert_eq!(late_misses, 0, "must relearn after squash");
    }

    #[test]
    fn drain_flushes_in_flight_state() {
        let mut p = spec(32);
        for i in 0..10u64 {
            p.access(0x40, i);
        }
        p.drain();
        // After draining, the level-2 entry for the current history holds
        // the resolved stride, so the next prediction is correct.
        assert_eq!(p.predict(0x40), 10);
    }

    #[test]
    fn name_and_accessors() {
        let p = spec(32);
        assert!(p.name().contains("@d32"));
        assert_eq!(p.delay(), 32);
        assert!(p.storage().total_bits() > 0);
    }
}
