use crate::alias::{AliasAnalyzer, AnalyzedKind};
use crate::error::{check_table_bits, ConfigError};
use crate::fcm::TwoLevelInstrumentation;
use crate::hash::HashFunction;
use crate::predictor::{AccessOutcome, L2Indexed, ValuePredictor};
use crate::storage::StorageCost;
use crate::table_stats::{TableStats, TableTracker};
use crate::DEFAULT_VALUE_BITS;

/// Width of the differences stored in the DFCM level-2 table (§4.4).
///
/// Strides seldom need the full architectural width, so the level-2 table
/// can store a truncated difference. Stored differences are sign-extended
/// when read back, so small positive *and* negative strides survive
/// truncation; a difference too large for the width predicts incorrectly,
/// costing accuracy (the paper measures a .01–.03 drop at 16 bits and
/// .05–.08 at 8 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StrideWidth {
    /// Store the full difference (the paper's default configuration; cost
    /// accounted at the configured value width).
    #[default]
    Full,
    /// Store only the low `n` bits, sign-extended on read.
    Bits(u32),
}

impl StrideWidth {
    /// Storage bits per level-2 entry under a `value_bits`-wide cost model.
    pub fn bits(self, value_bits: u32) -> u32 {
        match self {
            StrideWidth::Full => value_bits,
            StrideWidth::Bits(n) => n,
        }
    }

    #[inline]
    fn store(self, diff: u64) -> u64 {
        match self {
            StrideWidth::Full => diff,
            StrideWidth::Bits(64) => diff,
            StrideWidth::Bits(n) => diff & ((1u64 << n) - 1),
        }
    }

    #[inline]
    fn load(self, stored: u64) -> u64 {
        match self {
            StrideWidth::Full | StrideWidth::Bits(64) => stored,
            StrideWidth::Bits(n) => {
                // Sign-extend from bit n-1.
                let shift = 64 - n;
                (((stored << shift) as i64) >> shift) as u64
            }
        }
    }
}

/// The differential finite context method predictor — the paper's
/// contribution (§3).
///
/// Like the [`FcmPredictor`](crate::FcmPredictor), a two-level predictor;
/// unlike it, the context is the history of *differences* between
/// successive values, and the level-2 table stores the next difference.
/// Each level-1 entry therefore holds the last value in addition to the
/// hashed difference history, and the prediction is
/// `last + L2[hash(diff history)]` (Figure 7).
///
/// Storing differences makes every stride pattern look like a *constant*
/// pattern: the entire pattern collapses onto a single level-2 entry, and
/// all patterns with the same stride share that entry (Figure 8). This
/// frees the level-2 table for the genuinely context-based patterns and is
/// the source of the paper's 8–33% accuracy improvement over FCM.
///
/// ```
/// use dfcm::{DfcmPredictor, ValuePredictor};
///
/// # fn main() -> Result<(), dfcm::ConfigError> {
/// let mut p = DfcmPredictor::builder().l1_bits(8).l2_bits(12).build()?;
/// // Two interleaved stride patterns with the same stride: after warmup
/// // they share one level-2 entry and both predict perfectly.
/// let mut correct = 0;
/// for i in 0..100u64 {
///     correct += usize::from(p.access(0x10, 1000 + 4 * i).correct);
///     correct += usize::from(p.access(0x20, 9000 + 4 * i).correct);
/// }
/// assert!(correct >= 188); // only warmup misses while the histories fill
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DfcmPredictor {
    last: Vec<u64>,
    hist: Vec<u64>,
    /// Next difference per difference-history (possibly truncated).
    l2: Vec<u64>,
    l1_mask: usize,
    l1_bits: u32,
    l2_bits: u32,
    hash: HashFunction,
    value_bits: u32,
    stride_width: StrideWidth,
    stats: Option<TwoLevelInstrumentation>,
}

/// Builder for [`DfcmPredictor`]; obtained from [`DfcmPredictor::builder`].
#[derive(Debug, Clone)]
pub struct DfcmBuilder {
    l1_bits: u32,
    l2_bits: u32,
    hash: HashFunction,
    value_bits: u32,
    stride_width: StrideWidth,
}

impl Default for DfcmBuilder {
    fn default() -> Self {
        DfcmBuilder {
            l1_bits: 12,
            l2_bits: 12,
            hash: HashFunction::FsR5,
            value_bits: DEFAULT_VALUE_BITS,
            stride_width: StrideWidth::Full,
        }
    }
}

impl DfcmBuilder {
    /// Sets the level-1 table to `2^bits` entries (default 12).
    pub fn l1_bits(&mut self, bits: u32) -> &mut Self {
        self.l1_bits = bits;
        self
    }

    /// Sets the level-2 table to `2^bits` entries (default 12).
    pub fn l2_bits(&mut self, bits: u32) -> &mut Self {
        self.l2_bits = bits;
        self
    }

    /// Selects the history hash function (default [`HashFunction::FsR5`],
    /// applied to the difference stream exactly as the paper does).
    pub fn hash(&mut self, hash: HashFunction) -> &mut Self {
        self.hash = hash;
        self
    }

    /// Sets the architectural value width used for storage accounting
    /// (default 32).
    pub fn value_bits(&mut self, bits: u32) -> &mut Self {
        self.value_bits = bits;
        self
    }

    /// Restricts the width of differences stored in the level-2 table
    /// (default [`StrideWidth::Full`]; §4.4 of the paper).
    pub fn stride_width(&mut self, width: StrideWidth) -> &mut Self {
        self.stride_width = width;
        self
    }

    /// Builds the predictor.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if a table exponent exceeds 30, the value
    /// width is outside `1..=64`, the stride width is outside `1..=64`, or
    /// the hash cannot produce `l2_bits`-bit indices.
    pub fn build(&self) -> Result<DfcmPredictor, ConfigError> {
        check_table_bits("l1_bits", self.l1_bits)?;
        check_table_bits("l2_bits", self.l2_bits)?;
        if !(1..=64).contains(&self.value_bits) {
            return Err(ConfigError::Width {
                parameter: "value_bits",
                value: self.value_bits,
                min: 1,
                max: 64,
            });
        }
        if let StrideWidth::Bits(n) = self.stride_width {
            if !(1..=64).contains(&n) {
                return Err(ConfigError::Width {
                    parameter: "stride_width",
                    value: n,
                    min: 1,
                    max: 64,
                });
            }
        }
        self.hash.validate(self.l2_bits)?;
        Ok(DfcmPredictor {
            last: vec![0; 1 << self.l1_bits],
            hist: vec![0; 1 << self.l1_bits],
            l2: vec![0; 1 << self.l2_bits],
            l1_mask: (1usize << self.l1_bits) - 1,
            l1_bits: self.l1_bits,
            l2_bits: self.l2_bits,
            hash: self.hash,
            value_bits: self.value_bits,
            stride_width: self.stride_width,
            stats: None,
        })
    }
}

impl DfcmPredictor {
    /// Starts building a DFCM predictor.
    pub fn builder() -> DfcmBuilder {
        DfcmBuilder::default()
    }

    /// Level-1 table size exponent.
    pub fn l1_bits(&self) -> u32 {
        self.l1_bits
    }

    /// Level-2 table size exponent.
    pub fn l2_bits(&self) -> u32 {
        self.l2_bits
    }

    /// The hash function used to maintain difference histories.
    pub fn hash(&self) -> HashFunction {
        self.hash
    }

    /// The history order implied by the hash and level-2 size.
    pub fn order(&self) -> u32 {
        self.hash.order(self.l2_bits)
    }

    /// The configured level-2 difference storage width.
    pub fn stride_width(&self) -> StrideWidth {
        self.stride_width
    }

    /// The hashed difference history currently stored for `pc`.
    pub fn history(&self, pc: u64) -> u64 {
        self.hist[crate::predictor::pc_index(pc, self.l1_mask)]
    }

    /// The last value recorded for `pc` in the level-1 table.
    pub fn last_value(&self, pc: u64) -> u64 {
        self.last[crate::predictor::pc_index(pc, self.l1_mask)]
    }

    /// Serializes the mutable table state (not the configuration) as a
    /// flat word vector: the level-1 last values, the level-1 hashed
    /// difference histories, then the level-2 stored differences, each
    /// in index order.
    pub fn state_words(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(2 * self.last.len() + self.l2.len());
        words.extend_from_slice(&self.last);
        words.extend_from_slice(&self.hist);
        words.extend_from_slice(&self.l2);
        words
    }

    /// Restores state captured by
    /// [`state_words`](DfcmPredictor::state_words) into an identically
    /// configured predictor.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::State`](crate::ConfigError) when the word
    /// count does not match, or a difference history is not a valid
    /// level-2 index — histories index the level-2 table directly, so an
    /// out-of-range word (possible only in a corrupt or hostile blob)
    /// would otherwise panic the next prediction. A failed load leaves
    /// the predictor unchanged.
    pub fn load_state_words(&mut self, words: &[u64]) -> Result<(), crate::ConfigError> {
        let (n1, n2) = (self.last.len(), self.l2.len());
        if words.len() != 2 * n1 + n2 {
            return Err(crate::ConfigError::State {
                reason: format!(
                    "dfcm state holds {} words, tables need {}",
                    words.len(),
                    2 * n1 + n2
                ),
            });
        }
        let (last, rest) = words.split_at(n1);
        let (hist, l2) = rest.split_at(n1);
        if let Some((i, &history)) = hist.iter().enumerate().find(|(_, &h)| h >= n2 as u64) {
            return Err(crate::ConfigError::State {
                reason: format!("dfcm history[{i}] = {history} is not a level-2 index (< {n2})"),
            });
        }
        self.last.copy_from_slice(last);
        self.hist.copy_from_slice(hist);
        self.l2.copy_from_slice(l2);
        Ok(())
    }

    #[inline]
    fn l1_index(&self, pc: u64) -> usize {
        crate::predictor::pc_index(pc, self.l1_mask)
    }
}

impl ValuePredictor for DfcmPredictor {
    fn predict(&mut self, pc: u64) -> u64 {
        let i1 = self.l1_index(pc);
        let diff = self.stride_width.load(self.l2[self.hist[i1] as usize]);
        self.last[i1].wrapping_add(diff)
    }

    fn update(&mut self, pc: u64, actual: u64) {
        let i1 = self.l1_index(pc);
        let history = self.hist[i1];
        let diff = actual.wrapping_sub(self.last[i1]);
        self.l2[history as usize] = self.stride_width.store(diff);
        self.hist[i1] = self.hash.fold_update(history, diff, self.l2_bits);
        self.last[i1] = actual;
        if let Some(stats) = &mut self.stats {
            stats.l1.record(i1);
            stats.l2.record(history as usize);
            if let Some(analyzer) = &mut stats.analyzer {
                let (class, _) = analyzer.access(pc, actual);
                stats.last_class = Some(class);
            }
        }
    }

    // Fused predict+update: the shared L1 index, the history and the last
    // value are each read once per record instead of once in `predict` and
    // again in `update`. Bit-identical to the default predict-then-update.
    #[inline]
    fn access(&mut self, pc: u64, actual: u64) -> AccessOutcome {
        let i1 = self.l1_index(pc);
        let history = self.hist[i1];
        let last = self.last[i1];
        let predicted = last.wrapping_add(self.stride_width.load(self.l2[history as usize]));
        let diff = actual.wrapping_sub(last);
        self.l2[history as usize] = self.stride_width.store(diff);
        self.hist[i1] = self.hash.fold_update(history, diff, self.l2_bits);
        self.last[i1] = actual;
        if let Some(stats) = &mut self.stats {
            stats.l1.record(i1);
            stats.l2.record(history as usize);
            if let Some(analyzer) = &mut stats.analyzer {
                let (class, _) = analyzer.access(pc, actual);
                stats.last_class = Some(class);
            }
        }
        AccessOutcome {
            predicted,
            correct: predicted == actual,
        }
    }

    fn storage(&self) -> StorageCost {
        let l1 = self.last.len() as u64;
        StorageCost::new()
            .with("L1 last values", l1 * self.value_bits as u64)
            .with("L1 hashed histories", l1 * self.l2_bits as u64)
            .with(
                "L2 differences",
                self.l2.len() as u64 * self.stride_width.bits(self.value_bits) as u64,
            )
    }

    fn name(&self) -> String {
        let width = match self.stride_width {
            StrideWidth::Full => String::new(),
            StrideWidth::Bits(n) => format!(",d{n}"),
        };
        format!(
            "dfcm(l1=2^{},l2=2^{},{}{})",
            self.l1_bits,
            self.l2_bits,
            self.hash.label(),
            width
        )
    }

    fn enable_table_stats(&mut self) {
        if self.stats.is_none() {
            // The analyzer replicates a full-width DFCM; with truncated
            // differences its predictions would drift from ours, so only
            // table usage is tracked in that configuration.
            let analyzer = (self.stride_width == StrideWidth::Full).then(|| {
                AliasAnalyzer::with_hash(AnalyzedKind::Dfcm, self.l1_bits, self.l2_bits, self.hash)
                    .expect("predictor config was already validated")
            });
            self.stats = Some(TwoLevelInstrumentation {
                l1: TableTracker::new("l1", self.last.len()),
                l2: TableTracker::new("l2", self.l2.len()),
                analyzer,
                last_class: None,
            });
        }
    }

    fn table_stats(&self) -> Option<TableStats> {
        self.stats.as_ref().map(|s| TableStats {
            tables: vec![s.l1.usage(), s.l2.usage()],
            alias: s.analyzer.as_ref().map(AliasAnalyzer::breakdown),
        })
    }

    fn last_alias_class(&self) -> Option<crate::AliasClass> {
        self.stats.as_ref().and_then(|s| s.last_class)
    }
}

impl L2Indexed for DfcmPredictor {
    fn l2_index(&self, pc: u64) -> usize {
        self.hist[crate::predictor::pc_index(pc, self.l1_mask)] as usize
    }

    fn l2_entries(&self) -> usize {
        self.l2.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dfcm(l1: u32, l2: u32) -> DfcmPredictor {
        DfcmPredictor::builder()
            .l1_bits(l1)
            .l2_bits(l2)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert!(DfcmPredictor::builder().l1_bits(31).build().is_err());
        assert!(DfcmPredictor::builder()
            .stride_width(StrideWidth::Bits(0))
            .build()
            .is_err());
        assert!(DfcmPredictor::builder()
            .stride_width(StrideWidth::Bits(65))
            .build()
            .is_err());
        assert!(DfcmPredictor::builder().value_bits(65).build().is_err());
        assert!(DfcmPredictor::builder().build().is_ok());
    }

    #[test]
    fn predicts_fresh_stride_without_repetition() {
        // §3: "the DFCM can correctly predict stride patterns, even if they
        // have not been repeated yet" — after the constant-difference
        // history is established.
        let mut p = dfcm(6, 12);
        let misses: Vec<u64> = (0..64u64)
            .map(|i| 5 + 11 * i)
            .filter(|&v| !p.access(0, v).correct)
            .collect();
        // Warmup only: the difference history must fill (order + 2 misses
        // for a fresh stride at order 3), then every prediction hits.
        assert!(
            misses.len() <= p.order() as usize + 2,
            "unexpected misses: {misses:?}"
        );
        assert!(
            misses.iter().all(|&v| v <= 5 + 11 * 4),
            "late miss in {misses:?}"
        );
    }

    #[test]
    fn stride_patterns_collapse_to_one_l2_entry() {
        // Figure 8: once warmed up, a stride pattern indexes a single
        // level-2 entry over and over.
        let mut p = dfcm(6, 12);
        for i in 0..10u64 {
            p.access(0, 3 * i);
        }
        let idx = p.l2_index(0);
        for i in 10..50u64 {
            p.access(0, 3 * i);
            assert_eq!(p.l2_index(0), idx);
        }
    }

    #[test]
    fn same_stride_different_pcs_share_entries() {
        // "all stride patterns with the same stride map to the same
        // entries" — the level-2 index depends only on the difference
        // history, not on the PC or the absolute values.
        let mut p = dfcm(8, 12);
        for i in 0..20u64 {
            p.access(0x10, 100 + 7 * i);
            p.access(0x20, 90_000 + 7 * i);
        }
        assert_eq!(p.l2_index(0x10), p.l2_index(0x20));
    }

    #[test]
    fn different_strides_use_different_entries() {
        let mut p = dfcm(8, 12);
        for i in 0..20u64 {
            p.access(0x10, 7 * i);
            p.access(0x20, 11 * i);
        }
        assert_ne!(p.l2_index(0x10), p.l2_index(0x20));
    }

    #[test]
    fn learns_non_stride_context_patterns_like_fcm() {
        // §3: "For the pattern 0 4 2 1, the DFCM stores the last value 1 and
        // a history of differences: 4 -2 -1" — both representations are
        // equivalent, so repeating irregular patterns stay predictable.
        let mut p = dfcm(6, 14);
        let pattern = [0u64, 4, 2, 1];
        for _ in 0..5 {
            for &v in &pattern {
                p.access(0, v);
            }
        }
        let correct = pattern.iter().filter(|&&v| p.access(0, v).correct).count();
        assert_eq!(correct, pattern.len());
    }

    #[test]
    fn update_is_difference_of_last_value() {
        let mut p = dfcm(4, 8);
        p.update(1, 10);
        let h = p.history(1);
        p.update(1, 25);
        // Level-2 entry indexed by the pre-update history holds diff 15.
        assert_eq!(p.l2[h as usize], 15);
        assert_eq!(p.last_value(1), 25);
    }

    #[test]
    fn negative_strides_wrap_correctly() {
        let mut p = dfcm(6, 12);
        let misses = (0..50u64)
            .map(|i| 1_000_000u64.wrapping_sub(13 * i))
            .filter(|&v| !p.access(0, v).correct)
            .count();
        assert!(misses <= 5);
    }

    #[test]
    fn truncated_strides_sign_extend() {
        let w = StrideWidth::Bits(8);
        assert_eq!(w.load(w.store(5)), 5);
        assert_eq!(w.load(w.store((-5i64) as u64)), (-5i64) as u64);
        // A difference that does not fit is mangled (that is the accuracy
        // cost the paper measures).
        assert_ne!(w.load(w.store(300)), 300);
    }

    #[test]
    fn full_width_is_lossless() {
        for w in [StrideWidth::Full, StrideWidth::Bits(64)] {
            assert_eq!(w.load(w.store(u64::MAX)), u64::MAX);
            assert_eq!(w.load(w.store(12345)), 12345);
        }
    }

    #[test]
    fn narrow_width_still_predicts_small_strides() {
        let mut p = DfcmPredictor::builder()
            .l1_bits(6)
            .l2_bits(12)
            .stride_width(StrideWidth::Bits(8))
            .build()
            .unwrap();
        let misses = (0..50u64).filter(|&i| !p.access(0, 3 * i).correct).count();
        assert!(misses <= 5);
        // And negative small strides too.
        let mut p2 = DfcmPredictor::builder()
            .l1_bits(6)
            .l2_bits(12)
            .stride_width(StrideWidth::Bits(8))
            .build()
            .unwrap();
        let misses = (0..50u64)
            .map(|i| 1000u64.wrapping_sub(3 * i))
            .filter(|&v| !p2.access(0, v).correct)
            .count();
        assert!(misses <= 5);
    }

    #[test]
    fn storage_matches_paper_model() {
        // §4.1/Fig 11: DFCM pays for the last value in L1 but can narrow L2.
        let p = dfcm(16, 12);
        assert_eq!(
            p.storage().total_bits(),
            (1u64 << 16) * 32 + (1u64 << 16) * 12 + (1u64 << 12) * 32
        );
        let narrow = DfcmPredictor::builder()
            .l1_bits(16)
            .l2_bits(12)
            .stride_width(StrideWidth::Bits(8))
            .build()
            .unwrap();
        assert_eq!(
            narrow.storage().total_bits(),
            (1u64 << 16) * 32 + (1u64 << 16) * 12 + (1u64 << 12) * 8
        );
    }

    #[test]
    fn name_mentions_config() {
        assert_eq!(dfcm(16, 12).name(), "dfcm(l1=2^16,l2=2^12,fs-r5)");
        let narrow = DfcmPredictor::builder()
            .stride_width(StrideWidth::Bits(16))
            .build()
            .unwrap();
        assert!(narrow.name().contains("d16"));
    }

    #[test]
    fn wraparound_pattern_uses_few_entries() {
        // Figure 8's example: 0 1 2 3 4 5 6 repeated. All steady-state
        // accesses share one entry; the counter reset transiently visits a
        // handful more (order-many histories contain the reset difference).
        let mut p = dfcm(6, 12);
        let mut indices = std::collections::HashSet::new();
        for _ in 0..20 {
            for v in 0..7u64 {
                indices.insert(p.l2_index(0));
                p.access(0, v);
            }
        }
        // order = 3 at l2_bits = 12: reset affects 3 consecutive histories,
        // plus the steady-state entry and initial warmup.
        assert!(
            indices.len() <= 6,
            "expected few entries, got {}",
            indices.len()
        );
    }
}
