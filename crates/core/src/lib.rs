//! Value predictors from *Differential FCM: Increasing Value Prediction
//! Accuracy by Improving Table Usage Efficiency* (Goeman, Vandierendonck and
//! De Bosschere, HPCA 2001).
//!
//! A *value predictor* is a microarchitectural structure that guesses the
//! result of an instruction before it executes, so that dependent
//! instructions can start speculatively. This crate implements every
//! predictor the paper discusses, plus the instrumentation used in its
//! evaluation:
//!
//! * [`LastValuePredictor`] — predicts the previous value (Lipasti, §2.1).
//! * [`StridePredictor`] — last value + confidence-guarded stride (§2.2).
//! * [`TwoDeltaStridePredictor`] — the two-delta stride variant
//!   (Eickemeyer & Vassiliadis, §2.2).
//! * [`FcmPredictor`] — the two-level finite context method (Sazeides &
//!   Smith, §2.3) with the FS R-5 hashing function.
//! * [`DfcmPredictor`] — the paper's contribution: an FCM over *differences*
//!   between successive values (§3).
//! * [`HybridPredictor`] — two component predictors arbitrated by a
//!   [`MetaPredictor`], including the paper's perfect oracle (§4.3).
//! * [`DelayedUpdate`] — models a prediction-to-update delay of *d*
//!   intervening predictions (§4.5).
//! * [`AliasAnalyzer`] — classifies every prediction into the paper's five
//!   aliasing categories (§4.2, Figures 12–14).
//! * [`StrideOccupancyProfiler`] — counts, per level-2 entry, accesses that
//!   are part of a stride pattern (Figures 6 and 9).
//! * [`TaggedDfcmPredictor`] — the confidence estimator the paper suggests
//!   at the end of §4.2 (level-2 tags from an orthogonal second hash),
//!   implemented as an extension.
//!
//! Related-work predictors from the paper's §5, for comparison studies:
//! [`LastNValuePredictor`] (Burtscher & Zorn \[2\]) and
//! [`ClassifiedPredictor`] (dynamic classification, Rychlik et al. \[12\]).
//!
//! # Quick example
//!
//! ```
//! use dfcm::{DfcmPredictor, FcmPredictor, ValuePredictor};
//!
//! # fn main() -> Result<(), dfcm::ConfigError> {
//! // A stride pattern 100, 103, 106, ... produced by one static instruction.
//! let mut dfcm = DfcmPredictor::builder().l1_bits(10).l2_bits(10).build()?;
//! let mut fcm = FcmPredictor::builder().l1_bits(10).l2_bits(10).build()?;
//! let mut dfcm_hits = 0;
//! let mut fcm_hits = 0;
//! for i in 0..1000u64 {
//!     let value = 100 + 3 * i;
//!     if dfcm.access(0x400100, value).correct {
//!         dfcm_hits += 1;
//!     }
//!     if fcm.access(0x400100, value).correct {
//!         fcm_hits += 1;
//!     }
//! }
//! // The DFCM learns a stride after a few values and never misses again;
//! // the FCM must see every history before it can predict a successor.
//! assert!(dfcm_hits > 990);
//! assert!(fcm_hits < dfcm_hits);
//! # Ok(())
//! # }
//! ```
//!
//! # Implementing your own predictor
//!
//! Everything in the harness (suite runs, sweeps, aliasing-free
//! evaluation, the repro binaries' machinery) works over the
//! [`ValuePredictor`] trait, so a new design drops straight in:
//!
//! ```
//! use dfcm::{AccessOutcome, StorageCost, ValuePredictor};
//!
//! /// Predicts that each instruction repeats its previous *difference
//! /// from zero* sign — a deliberately silly design to show the shape.
//! struct SignPredictor {
//!     table: Vec<u64>,
//! }
//!
//! impl ValuePredictor for SignPredictor {
//!     fn predict(&mut self, pc: u64) -> u64 {
//!         self.table[(pc >> 2) as usize & (self.table.len() - 1)]
//!     }
//!     fn update(&mut self, pc: u64, actual: u64) {
//!         let idx = (pc >> 2) as usize & (self.table.len() - 1);
//!         self.table[idx] = actual;
//!     }
//!     fn storage(&self) -> StorageCost {
//!         StorageCost::new().with("table", self.table.len() as u64 * 32)
//!     }
//!     fn name(&self) -> String {
//!         "sign".into()
//!     }
//! }
//!
//! let mut p = SignPredictor { table: vec![0; 64] };
//! let out: AccessOutcome = p.access(0x400000, 7);
//! assert!(!out.correct); // cold table
//! assert!(p.access(0x400000, 7).correct);
//! ```
//!
//! # Conventions
//!
//! * Values and program counters are `u64`; all difference arithmetic wraps,
//!   as it does in hardware.
//! * Table sizes are given as power-of-two exponents (`l1_bits`, `l2_bits`),
//!   matching the paper's 2^n-entry tables.
//! * Storage accounting ([`StorageCost`]) follows the paper's Kbit model: a
//!   32-bit architectural value width by default (the paper simulates 32-bit
//!   MIPS), hashed histories of `l2_bits` bits, and stride-predictor
//!   confidence counters excluded (the paper treats them as already present
//!   for confidence estimation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alias;
mod classified;
mod counter;
mod delayed;
mod dfcm;
mod error;
mod fcm;
mod hash;
mod hybrid;
mod ideal;
mod lastn;
mod lvp;
mod predictor;
mod profile;
mod speculative;
mod storage;
mod stride;
mod table_stats;
mod tagged;

pub use crate::alias::{AliasAnalyzer, AliasBreakdown, AliasClass, AnalyzedKind};
pub use crate::classified::{
    ClassCensus, ClassifiedBuilder, ClassifiedPredictor, InstructionClass,
};
pub use crate::counter::SaturatingCounter;
pub use crate::delayed::DelayedUpdate;
pub use crate::dfcm::{DfcmBuilder, DfcmPredictor, StrideWidth};
pub use crate::error::ConfigError;
pub use crate::fcm::{FcmBuilder, FcmPredictor};
pub use crate::hash::HashFunction;
pub use crate::hybrid::{Component, CounterMeta, HybridPredictor, MetaPredictor, PerfectMeta};
pub use crate::ideal::IdealContextPredictor;
pub use crate::lastn::LastNValuePredictor;
pub use crate::lvp::LastValuePredictor;
pub use crate::predictor::{AccessOutcome, L2Indexed, ValuePredictor};
pub use crate::profile::{OccupancyStats, StrideOccupancyProfiler};
pub use crate::speculative::{SpeculativeDfcm, SpeculativeDfcmBuilder};
pub use crate::storage::StorageCost;
pub use crate::stride::{StridePredictor, TwoDeltaStridePredictor};
pub use crate::table_stats::{TableStats, TableUsage};
pub use crate::tagged::{
    ConfidencePredictor, ConfidentPrediction, TaggedDfcmBuilder, TaggedDfcmPredictor,
};

/// Architectural value width, in bits, assumed by the default storage cost
/// model (the paper simulates the 32-bit MIPS-like SimpleScalar ISA).
pub const DEFAULT_VALUE_BITS: u32 = 32;
