use std::collections::{HashMap, VecDeque};

use crate::error::{check_table_bits, ConfigError};
use crate::hash::HashFunction;
use crate::DEFAULT_VALUE_BITS;

/// The paper's five aliasing categories (§4.2), in precedence order: every
/// prediction is put in the *first* category whose detection rule applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AliasClass {
    /// Level-1 aliasing: some value in the history used to index the
    /// level-2 table was produced by a *different* static instruction that
    /// maps to the same level-1 entry.
    L1,
    /// Hash aliasing: the complete (unhashed) history recorded with the
    /// level-2 entry at its last update differs from the current history —
    /// two different contexts collided in the hash.
    Hash,
    /// A per-level-1-entry private level-2 table would have predicted a
    /// different value than the shared global table.
    L2Priv,
    /// The level-2 entry was last updated by a different static
    /// instruction (PC tag mismatch) — aliasing between *identical*
    /// patterns from different instructions, which the paper shows is
    /// benign.
    L2Pc,
    /// No aliasing detected by any rule.
    NoAlias,
}

impl AliasClass {
    /// All classes in precedence order.
    pub const ALL: [AliasClass; 5] = [
        AliasClass::L1,
        AliasClass::Hash,
        AliasClass::L2Priv,
        AliasClass::L2Pc,
        AliasClass::NoAlias,
    ];

    /// The paper's label for this class.
    pub fn label(self) -> &'static str {
        match self {
            AliasClass::L1 => "l1",
            AliasClass::Hash => "hash",
            AliasClass::L2Priv => "l2_priv",
            AliasClass::L2Pc => "l2_pc",
            AliasClass::NoAlias => "none",
        }
    }

    fn index(self) -> usize {
        match self {
            AliasClass::L1 => 0,
            AliasClass::Hash => 1,
            AliasClass::L2Priv => 2,
            AliasClass::L2Pc => 3,
            AliasClass::NoAlias => 4,
        }
    }
}

/// Which predictor an [`AliasAnalyzer`] replicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalyzedKind {
    /// Analyze a [`FcmPredictor`](crate::FcmPredictor): history elements
    /// are values.
    Fcm,
    /// Analyze a [`DfcmPredictor`](crate::DfcmPredictor): history elements
    /// are differences between successive values.
    Dfcm,
}

/// Per-class prediction counts collected by an [`AliasAnalyzer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AliasBreakdown {
    /// `counts[class][0]` = wrong predictions, `counts[class][1]` = correct.
    counts: [[u64; 2]; 5],
}

impl AliasBreakdown {
    /// Total number of classified predictions.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c[0] + c[1]).sum()
    }

    /// Number of predictions in `class`.
    pub fn class_total(&self, class: AliasClass) -> u64 {
        let c = self.counts[class.index()];
        c[0] + c[1]
    }

    /// Number of correct predictions in `class`.
    pub fn class_correct(&self, class: AliasClass) -> u64 {
        self.counts[class.index()][1]
    }

    /// Fraction of all predictions that fell into `class` (Figure 13).
    pub fn fraction(&self, class: AliasClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.class_total(class) as f64 / total as f64
        }
    }

    /// Prediction accuracy within `class` (Figure 12).
    pub fn accuracy(&self, class: AliasClass) -> f64 {
        let t = self.class_total(class);
        if t == 0 {
            0.0
        } else {
            self.class_correct(class) as f64 / t as f64
        }
    }

    /// Mispredictions in `class` as a fraction of *all* predictions
    /// (Figure 14; the bars stack to the global misprediction rate).
    pub fn misprediction_fraction(&self, class: AliasClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.counts[class.index()][0] as f64 / total as f64
        }
    }

    /// Overall prediction accuracy across all classes.
    pub fn overall_accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.counts.iter().map(|c| c[1]).sum::<u64>() as f64 / total as f64
        }
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &AliasBreakdown) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            a[0] += b[0];
            a[1] += b[1];
        }
    }

    fn record(&mut self, class: AliasClass, correct: bool) {
        self.counts[class.index()][usize::from(correct)] += 1;
    }
}

#[derive(Debug, Clone)]
struct L2Shadow {
    /// Complete unhashed history (oldest first) at the last update.
    history: Vec<u64>,
    /// PC of the instruction that performed the last update.
    pc: u64,
}

/// An instrumented FCM/DFCM simulator that classifies every prediction into
/// the paper's aliasing taxonomy (§4.2).
///
/// The analyzer replicates the predictor's two-level state and additionally
/// maintains the paper's shadow structures: per-level-1-entry source-PC
/// histories (for `l1`), complete unhashed histories and PC tags on every
/// level-2 entry (for `hash` and `l2_pc`), and a private level-2 table per
/// level-1 entry (for `l2_priv`). Only the first rule that applies is
/// counted.
///
/// Predictions through a level-2 entry that has never been written cannot
/// be checked by the `hash`/`l2_priv`/`l2_pc` rules (there is nothing
/// recorded to compare against) and fall through to `none`; cold-start
/// predictions are almost always wrong but are a vanishing fraction of any
/// realistic trace.
///
/// ```
/// use dfcm::{AliasAnalyzer, AliasClass, AnalyzedKind};
///
/// # fn main() -> Result<(), dfcm::ConfigError> {
/// let mut az = AliasAnalyzer::new(AnalyzedKind::Fcm, 10, 10)?;
/// for i in 0..1000u64 {
///     az.access(0x400, i % 7);
/// }
/// let b = az.breakdown();
/// // A single in-pattern instruction suffers no L1 aliasing.
/// assert_eq!(b.class_total(AliasClass::L1), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AliasAnalyzer {
    kind: AnalyzedKind,
    hash: HashFunction,
    order: usize,
    l1_bits: u32,
    l2_bits: u32,
    l1_mask: usize,
    // Replicated predictor state.
    last: Vec<u64>,
    hist: Vec<u64>,
    l2: Vec<u64>,
    // Shadow structures.
    elem_history: Vec<VecDeque<(u64, u64)>>,
    l2_shadow: Vec<Option<L2Shadow>>,
    private_l2: Vec<HashMap<u64, u64>>,
    breakdown: AliasBreakdown,
    last_predicted: u64,
}

impl AliasAnalyzer {
    /// Creates an analyzer for a predictor with `2^l1_bits` level-1 and
    /// `2^l2_bits` level-2 entries, using the paper's FS R-5 hash.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for table exponents above 30 or below 1 for
    /// the level-2 table.
    pub fn new(kind: AnalyzedKind, l1_bits: u32, l2_bits: u32) -> Result<Self, ConfigError> {
        Self::with_hash(kind, l1_bits, l2_bits, HashFunction::FsR5)
    }

    /// As [`new`](AliasAnalyzer::new) with an explicit hash function.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] as for [`new`](AliasAnalyzer::new), or if
    /// the hash cannot produce `l2_bits`-bit indices.
    pub fn with_hash(
        kind: AnalyzedKind,
        l1_bits: u32,
        l2_bits: u32,
        hash: HashFunction,
    ) -> Result<Self, ConfigError> {
        check_table_bits("l1_bits", l1_bits)?;
        check_table_bits("l2_bits", l2_bits)?;
        hash.validate(l2_bits)?;
        let l1_entries = 1usize << l1_bits;
        Ok(AliasAnalyzer {
            kind,
            hash,
            order: hash.order(l2_bits) as usize,
            l1_bits,
            l2_bits,
            l1_mask: l1_entries - 1,
            last: vec![0; l1_entries],
            hist: vec![0; l1_entries],
            l2: vec![0; 1 << l2_bits],
            elem_history: vec![VecDeque::new(); l1_entries],
            l2_shadow: vec![None; 1 << l2_bits],
            private_l2: vec![HashMap::new(); l1_entries],
            breakdown: AliasBreakdown::default(),
            last_predicted: 0,
        })
    }

    /// The analyzed predictor kind.
    pub fn kind(&self) -> AnalyzedKind {
        self.kind
    }

    /// The classification counts accumulated so far.
    pub fn breakdown(&self) -> AliasBreakdown {
        self.breakdown
    }

    /// The value predicted by the most recent
    /// [`access`](AliasAnalyzer::access) (0 before the first access).
    /// Lets callers feed the replicated prediction into magnitude-aware
    /// consumers (e.g. the phase-series miss histogram) without
    /// re-simulating the predictor.
    pub fn last_predicted(&self) -> u64 {
        self.last_predicted
    }

    /// Performs one predict/classify/update step and returns the class and
    /// correctness of the prediction.
    pub fn access(&mut self, pc: u64, actual: u64) -> (AliasClass, bool) {
        let i1 = crate::predictor::pc_index(pc, self.l1_mask);
        let h = self.hist[i1];
        let i2 = h as usize;

        // Replicated prediction.
        let stored = self.l2[i2];
        let predicted = match self.kind {
            AnalyzedKind::Fcm => stored,
            AnalyzedKind::Dfcm => self.last[i1].wrapping_add(stored),
        };
        let correct = predicted == actual;
        self.last_predicted = predicted;

        // Classification (first rule that applies).
        let class = self.classify(pc, i1, h, i2, stored);
        self.breakdown.record(class, correct);

        // Replicated update plus shadow maintenance.
        let elem = match self.kind {
            AnalyzedKind::Fcm => actual,
            AnalyzedKind::Dfcm => actual.wrapping_sub(self.last[i1]),
        };
        let current_history: Vec<u64> = self.elem_history[i1].iter().map(|&(_, e)| e).collect();
        self.l2[i2] = elem;
        self.l2_shadow[i2] = Some(L2Shadow {
            history: current_history,
            pc,
        });
        self.private_l2[i1].insert(h, elem);
        let deque = &mut self.elem_history[i1];
        deque.push_back((pc, elem));
        while deque.len() > self.order {
            deque.pop_front();
        }
        self.hist[i1] = self.hash.fold_update(h, elem, self.l2_bits);
        self.last[i1] = actual;

        (class, correct)
    }

    fn classify(&self, pc: u64, i1: usize, h: u64, i2: usize, stored: u64) -> AliasClass {
        // Rule 1 — l1: any history element produced by another instruction.
        if self.elem_history[i1].iter().any(|&(src, _)| src != pc) {
            return AliasClass::L1;
        }
        let shadow = self.l2_shadow[i2].as_ref();
        // Rule 2 — hash: recorded complete history differs from the actual
        // one.
        if let Some(shadow) = shadow {
            let current: Vec<u64> = self.elem_history[i1].iter().map(|&(_, e)| e).collect();
            if shadow.history != current {
                return AliasClass::Hash;
            }
        }
        // Rule 3 — l2_priv: a private level-2 table would predict
        // differently.
        if let Some(&private) = self.private_l2[i1].get(&h) {
            if private != stored {
                return AliasClass::L2Priv;
            }
        }
        // Rule 4 — l2_pc: the entry was last written by another
        // instruction.
        if let Some(shadow) = shadow {
            if shadow.pc != pc {
                return AliasClass::L2Pc;
            }
        }
        AliasClass::NoAlias
    }

    /// Level-1 table size exponent.
    pub fn l1_bits(&self) -> u32 {
        self.l1_bits
    }

    /// Level-2 table size exponent.
    pub fn l2_bits(&self) -> u32 {
        self.l2_bits
    }

    /// Cost-model note: the analyzer replicates a predictor with the given
    /// geometry; its shadow structures are measurement-only and have no
    /// hardware cost. Provided for report symmetry.
    pub fn value_bits(&self) -> u32 {
        DEFAULT_VALUE_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfcm::DfcmPredictor;
    use crate::fcm::FcmPredictor;
    use crate::predictor::ValuePredictor;

    /// The analyzer must agree exactly with the real predictor on every
    /// prediction — this guards the replicated predictor logic against
    /// drift.
    #[test]
    fn analyzer_accuracy_matches_fcm() {
        let mut az = AliasAnalyzer::new(AnalyzedKind::Fcm, 6, 10).unwrap();
        let mut p = FcmPredictor::builder()
            .l1_bits(6)
            .l2_bits(10)
            .build()
            .unwrap();
        for i in 0..5000u64 {
            let pc = (i * 7) % 100;
            let v = (i % 13).wrapping_mul(pc);
            let (_, az_correct) = az.access(pc, v);
            assert_eq!(az_correct, p.access(pc, v).correct, "i={i}");
        }
    }

    #[test]
    fn analyzer_accuracy_matches_dfcm() {
        let mut az = AliasAnalyzer::new(AnalyzedKind::Dfcm, 6, 10).unwrap();
        let mut p = DfcmPredictor::builder()
            .l1_bits(6)
            .l2_bits(10)
            .build()
            .unwrap();
        for i in 0..5000u64 {
            let pc = (i * 3) % 50;
            let v = 17 * i + pc;
            let (_, az_correct) = az.access(pc, v);
            assert_eq!(az_correct, p.access(pc, v).correct, "i={i}");
        }
    }

    #[test]
    fn l1_aliasing_detected_when_pcs_collide() {
        // Two PCs sharing one L1 entry (l1_bits = 0 → single entry).
        let mut az = AliasAnalyzer::new(AnalyzedKind::Fcm, 0, 10).unwrap();
        az.access(0x10, 1);
        az.access(0x20, 2);
        let (class, _) = az.access(0x10, 3);
        assert_eq!(class, AliasClass::L1);
    }

    #[test]
    fn no_l1_aliasing_for_isolated_pcs() {
        let mut az = AliasAnalyzer::new(AnalyzedKind::Fcm, 8, 12).unwrap();
        for i in 0..100u64 {
            let (class, _) = az.access(5, i % 4);
            assert_ne!(class, AliasClass::L1, "i={i}");
        }
    }

    #[test]
    fn l2_pc_detected_for_identical_patterns_from_two_instructions() {
        // Two instructions in disjoint L1 entries producing the *same*
        // repeating pattern share level-2 entries; the PC tag flips between
        // them. The paper calls this benign aliasing — accuracy stays high.
        let mut az = AliasAnalyzer::new(AnalyzedKind::Fcm, 8, 12).unwrap();
        let pattern = [3u64, 9, 27, 81];
        for _ in 0..30 {
            for &v in &pattern {
                az.access(0x11, v);
                az.access(0x22, v);
            }
        }
        let b = az.breakdown();
        assert!(
            b.class_total(AliasClass::L2Pc) > 100,
            "expected heavy l2_pc traffic, got {}",
            b.class_total(AliasClass::L2Pc)
        );
        assert!(b.accuracy(AliasClass::L2Pc) > 0.9);
    }

    #[test]
    fn none_class_for_single_steady_pattern() {
        let mut az = AliasAnalyzer::new(AnalyzedKind::Fcm, 8, 12).unwrap();
        let pattern = [5u64, 1, 4, 1];
        for _ in 0..50 {
            for &v in &pattern {
                az.access(0x7, v);
            }
        }
        let b = az.breakdown();
        // Steady state: no aliasing, high accuracy.
        assert!(b.fraction(AliasClass::NoAlias) > 0.8);
        assert!(b.accuracy(AliasClass::NoAlias) > 0.9);
    }

    #[test]
    fn hash_aliasing_detected_in_tiny_l2() {
        // A tiny level-2 table with many distinct contexts forces hash
        // collisions: different complete histories map to the same entry.
        let mut az = AliasAnalyzer::new(AnalyzedKind::Fcm, 8, 4).unwrap();
        let mut hits = 0u64;
        for i in 0..2000u64 {
            let pc = (i % 8) * 4; // 8 distinct word-aligned instructions
            let v = i.wrapping_mul(2654435761) % 97;
            let (class, _) = az.access(pc, v);
            hits += u64::from(class == AliasClass::Hash);
        }
        assert!(hits > 200, "expected many hash aliases, got {hits}");
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let mut az = AliasAnalyzer::new(AnalyzedKind::Dfcm, 6, 8).unwrap();
        for i in 0..3000u64 {
            az.access(i % 40, (i * i) % 1000);
        }
        let b = az.breakdown();
        let sum: f64 = AliasClass::ALL.iter().map(|&c| b.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(b.total(), 3000);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = AliasBreakdown::default();
        a.record(AliasClass::Hash, true);
        let mut b = AliasBreakdown::default();
        b.record(AliasClass::Hash, false);
        b.record(AliasClass::NoAlias, true);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.class_total(AliasClass::Hash), 2);
        assert_eq!(a.class_correct(AliasClass::Hash), 1);
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = AliasClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["l1", "hash", "l2_priv", "l2_pc", "none"]);
    }
}
