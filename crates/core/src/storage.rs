use std::fmt;

/// Itemized storage cost of a predictor, in bits.
///
/// The paper compares predictors by total table storage in Kbit (Figures 3
/// and 11). `StorageCost` keeps a per-component breakdown so reports can
/// show, e.g., how the DFCM's extra last-value field in the level-1 table
/// trades off against its narrower level-2 entries.
///
/// ```
/// use dfcm::StorageCost;
///
/// let cost = StorageCost::new()
///     .with("L1 history", 1 << 16)
///     .with("L2 values", 32 << 12);
/// assert_eq!(cost.total_bits(), (1 << 16) + (32 << 12));
/// assert!(cost.kbits() > 190.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StorageCost {
    parts: Vec<(&'static str, u64)>,
}

impl StorageCost {
    /// Creates an empty (zero-bit) cost.
    pub fn new() -> Self {
        StorageCost::default()
    }

    /// Adds a named component of `bits` bits and returns the updated cost.
    #[must_use]
    pub fn with(mut self, label: &'static str, bits: u64) -> Self {
        self.parts.push((label, bits));
        self
    }

    /// Merges all components of `other` into this cost, prefixing is not
    /// performed; labels are kept as-is.
    #[must_use]
    pub fn with_cost(mut self, other: StorageCost) -> Self {
        self.parts.extend(other.parts);
        self
    }

    /// Total size in bits.
    pub fn total_bits(&self) -> u64 {
        self.parts.iter().map(|&(_, b)| b).sum()
    }

    /// Total size in Kbit (units of 1024 bits), the unit used in the paper's
    /// size/accuracy plots.
    pub fn kbits(&self) -> f64 {
        self.total_bits() as f64 / 1024.0
    }

    /// Iterates over `(label, bits)` components in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.parts.iter().copied()
    }
}

impl fmt::Display for StorageCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} Kbit (", self.kbits())?;
        for (i, (label, bits)) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{label}: {bits} b")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cost_is_zero() {
        let c = StorageCost::new();
        assert_eq!(c.total_bits(), 0);
        assert_eq!(c.kbits(), 0.0);
    }

    #[test]
    fn components_accumulate() {
        let c = StorageCost::new().with("a", 100).with("b", 24);
        assert_eq!(c.total_bits(), 124);
        let parts: Vec<_> = c.iter().collect();
        assert_eq!(parts, vec![("a", 100), ("b", 24)]);
    }

    #[test]
    fn merge_keeps_both_sides() {
        let a = StorageCost::new().with("a", 1);
        let b = StorageCost::new().with("b", 2);
        let merged = a.with_cost(b);
        assert_eq!(merged.total_bits(), 3);
        assert_eq!(merged.iter().count(), 2);
    }

    #[test]
    fn kbit_conversion() {
        let c = StorageCost::new().with("x", 2048);
        assert_eq!(c.kbits(), 2.0);
    }

    #[test]
    fn display_mentions_components() {
        let c = StorageCost::new().with("L1", 1024);
        let s = c.to_string();
        assert!(s.contains("1.0 Kbit"), "{s}");
        assert!(s.contains("L1: 1024 b"), "{s}");
    }
}
