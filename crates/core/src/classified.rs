use crate::fcm::FcmPredictor;
use crate::lvp::LastValuePredictor;
use crate::predictor::{AccessOutcome, ValuePredictor};
use crate::storage::StorageCost;
use crate::stride::StridePredictor;
use crate::ConfigError;

/// The instruction class assigned by the dynamic classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstructionClass {
    /// Still in the trial phase: all sub-predictors run and train.
    Trial,
    /// Assigned to the last value predictor.
    LastValue,
    /// Assigned to the stride predictor.
    Stride,
    /// Assigned to the FCM.
    Fcm,
    /// Deemed unpredictable: no prediction is issued.
    Unpredictable,
}

/// A dynamic-classification predictor in the style of Rychlik et al.
/// (reference \[12\]; discussed in the paper's §5).
///
/// Instructions are observed for a trial period during which a last-value,
/// a stride and an FCM sub-predictor all run; each instruction is then
/// permanently assigned to the sub-predictor that performed best (or
/// marked unpredictable if none reached the assignment threshold). After
/// assignment, only the assigned sub-predictor is consulted and trained,
/// so each instruction consumes resources in exactly one table — the
/// efficiency scheme the paper contrasts with the DFCM's *dynamic* sharing
/// ("a fixed partitioning of the available resources is introduced…
/// while ours can dynamically adjust the partitioning").
///
/// Unpredictable instructions issue no prediction; following Rychlik's
/// accounting, their accesses count as incorrect in [`access`], whatever
/// the value (they are lost coverage).
///
/// [`access`]: ValuePredictor::access
///
/// ```
/// use dfcm::{ClassifiedPredictor, InstructionClass, ValuePredictor};
///
/// # fn main() -> Result<(), dfcm::ConfigError> {
/// let mut p = ClassifiedPredictor::builder().build()?;
/// for i in 0..100u64 {
///     p.access(0x40, 3 * i); // a stride pattern
/// }
/// assert_eq!(p.class_of(0x40), InstructionClass::Stride);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ClassifiedPredictor {
    lvp: LastValuePredictor,
    stride: StridePredictor,
    fcm: FcmPredictor,
    states: Vec<ClassState>,
    mask: usize,
    class_bits: u32,
    trial_length: u8,
    assign_threshold: u8,
}

#[derive(Debug, Clone, Copy, Default)]
struct ClassState {
    class: Option<InstructionClass>,
    trials: u8,
    correct: [u8; 3],
}

/// Builder for [`ClassifiedPredictor`].
#[derive(Debug, Clone)]
pub struct ClassifiedBuilder {
    class_bits: u32,
    lvp_bits: u32,
    stride_bits: u32,
    fcm_l1_bits: u32,
    fcm_l2_bits: u32,
    trial_length: u8,
    assign_threshold: u8,
}

impl Default for ClassifiedBuilder {
    fn default() -> Self {
        ClassifiedBuilder {
            class_bits: 12,
            lvp_bits: 11,
            stride_bits: 11,
            fcm_l1_bits: 11,
            fcm_l2_bits: 12,
            trial_length: 16,
            assign_threshold: 8,
        }
    }
}

impl ClassifiedBuilder {
    /// Sets the classifier table to `2^bits` entries (default 12).
    pub fn class_bits(&mut self, bits: u32) -> &mut Self {
        self.class_bits = bits;
        self
    }

    /// Sets the last-value sub-table size (default 2^11).
    pub fn lvp_bits(&mut self, bits: u32) -> &mut Self {
        self.lvp_bits = bits;
        self
    }

    /// Sets the stride sub-table size (default 2^11).
    pub fn stride_bits(&mut self, bits: u32) -> &mut Self {
        self.stride_bits = bits;
        self
    }

    /// Sets the FCM sub-predictor geometry (default 2^11 / 2^12).
    pub fn fcm_bits(&mut self, l1: u32, l2: u32) -> &mut Self {
        self.fcm_l1_bits = l1;
        self.fcm_l2_bits = l2;
        self
    }

    /// Sets the number of trial occurrences before assignment (default
    /// 16) and the minimum correct count a sub-predictor needs to win the
    /// instruction (default 8).
    pub fn trial(&mut self, length: u8, threshold: u8) -> &mut Self {
        self.trial_length = length;
        self.assign_threshold = threshold;
        self
    }

    /// Builds the predictor.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid table exponents or a threshold
    /// above the trial length.
    pub fn build(&self) -> Result<ClassifiedPredictor, ConfigError> {
        crate::error::check_table_bits("class_bits", self.class_bits)?;
        if self.assign_threshold > self.trial_length || self.trial_length == 0 {
            return Err(ConfigError::Width {
                parameter: "assign_threshold",
                value: u32::from(self.assign_threshold),
                min: 0,
                max: u32::from(self.trial_length),
            });
        }
        Ok(ClassifiedPredictor {
            lvp: LastValuePredictor::new(self.lvp_bits),
            stride: StridePredictor::new(self.stride_bits),
            fcm: FcmPredictor::builder()
                .l1_bits(self.fcm_l1_bits)
                .l2_bits(self.fcm_l2_bits)
                .build()?,
            states: vec![ClassState::default(); 1 << self.class_bits],
            mask: (1usize << self.class_bits) - 1,
            class_bits: self.class_bits,
            trial_length: self.trial_length,
            assign_threshold: self.assign_threshold,
        })
    }
}

impl ClassifiedPredictor {
    /// Starts building a classified predictor.
    pub fn builder() -> ClassifiedBuilder {
        ClassifiedBuilder::default()
    }

    /// The current class of the instruction at `pc`.
    pub fn class_of(&self, pc: u64) -> InstructionClass {
        self.states[self.index(pc)]
            .class
            .unwrap_or(InstructionClass::Trial)
    }

    /// Census of assigned classes over the classifier table (only entries
    /// that finished their trial are counted).
    pub fn census(&self) -> ClassCensus {
        let mut census = ClassCensus::default();
        for s in &self.states {
            match s.class {
                Some(InstructionClass::LastValue) => census.last_value += 1,
                Some(InstructionClass::Stride) => census.stride += 1,
                Some(InstructionClass::Fcm) => census.fcm += 1,
                Some(InstructionClass::Unpredictable) => census.unpredictable += 1,
                _ => census.in_trial += 1,
            }
        }
        census
    }

    fn index(&self, pc: u64) -> usize {
        crate::predictor::pc_index(pc, self.mask)
    }
}

/// Counts of classifier-table entries per assigned class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCensus {
    /// Entries assigned to the last value predictor.
    pub last_value: usize,
    /// Entries assigned to the stride predictor.
    pub stride: usize,
    /// Entries assigned to the FCM.
    pub fcm: usize,
    /// Entries marked unpredictable.
    pub unpredictable: usize,
    /// Entries still in (or before) their trial phase.
    pub in_trial: usize,
}

impl ValuePredictor for ClassifiedPredictor {
    fn predict(&mut self, pc: u64) -> u64 {
        match self.class_of(pc) {
            InstructionClass::LastValue => self.lvp.predict(pc),
            InstructionClass::Stride => self.stride.predict(pc),
            InstructionClass::Fcm | InstructionClass::Trial => self.fcm.predict(pc),
            InstructionClass::Unpredictable => 0,
        }
    }

    fn update(&mut self, pc: u64, actual: u64) {
        let idx = self.index(pc);
        match self.states[idx].class {
            None => {
                // Trial phase: run and train everything, score each.
                let l = self.lvp.access(pc, actual).correct;
                let s = self.stride.access(pc, actual).correct;
                let f = self.fcm.access(pc, actual).correct;
                let state = &mut self.states[idx];
                state.correct[0] += u8::from(l);
                state.correct[1] += u8::from(s);
                state.correct[2] += u8::from(f);
                state.trials += 1;
                if state.trials >= self.trial_length {
                    let best = (0..3)
                        .max_by_key(|&i| state.correct[i])
                        .expect("three classes");
                    state.class = Some(if state.correct[best] < self.assign_threshold {
                        InstructionClass::Unpredictable
                    } else {
                        match best {
                            0 => InstructionClass::LastValue,
                            1 => InstructionClass::Stride,
                            _ => InstructionClass::Fcm,
                        }
                    });
                }
            }
            Some(InstructionClass::LastValue) => self.lvp.update(pc, actual),
            Some(InstructionClass::Stride) => self.stride.update(pc, actual),
            Some(InstructionClass::Fcm) => self.fcm.update(pc, actual),
            Some(InstructionClass::Unpredictable | InstructionClass::Trial) => {}
        }
    }

    fn access(&mut self, pc: u64, actual: u64) -> AccessOutcome {
        let class = self.class_of(pc);
        let predicted = self.predict(pc);
        self.update(pc, actual);
        let correct = match class {
            // No prediction is issued for unpredictable instructions;
            // per Rychlik's accounting these count against accuracy.
            InstructionClass::Unpredictable => false,
            _ => predicted == actual,
        };
        AccessOutcome { predicted, correct }
    }

    fn storage(&self) -> StorageCost {
        self.lvp
            .storage()
            .with_cost(self.stride.storage())
            .with_cost(self.fcm.storage())
            // 3 bits class + trial bookkeeping approximated at 2x5 bits.
            .with("classifier", (1u64 << self.class_bits) * 3)
    }

    fn name(&self) -> String {
        format!("classified(2^{},{})", self.class_bits, self.fcm.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classified() -> ClassifiedPredictor {
        ClassifiedPredictor::builder().build().unwrap()
    }

    #[test]
    fn builder_rejects_bad_trial() {
        assert!(ClassifiedPredictor::builder().trial(8, 9).build().is_err());
        assert!(ClassifiedPredictor::builder().trial(0, 0).build().is_err());
        assert!(ClassifiedPredictor::builder().trial(8, 4).build().is_ok());
    }

    #[test]
    fn stride_instruction_assigned_to_stride() {
        let mut p = classified();
        for i in 0..40u64 {
            p.access(0x40, 11 * i);
        }
        assert_eq!(p.class_of(0x40), InstructionClass::Stride);
    }

    #[test]
    fn constant_instruction_assigned_to_last_value() {
        let mut p = classified();
        for _ in 0..40 {
            p.access(0x80, 77);
        }
        // LVP and stride both predict constants; LVP wins ties by order.
        assert_eq!(p.class_of(0x80), InstructionClass::LastValue);
    }

    #[test]
    fn context_instruction_assigned_to_fcm() {
        let mut p = classified();
        let pattern = [9u64, 4, 1, 7, 2];
        for _ in 0..20 {
            for &v in &pattern {
                p.access(0xC0, v);
            }
        }
        assert_eq!(p.class_of(0xC0), InstructionClass::Fcm);
    }

    #[test]
    fn random_instruction_marked_unpredictable() {
        let mut p = classified();
        let mut x = 1u64;
        for _ in 0..40 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            p.access(0x100, x);
        }
        assert_eq!(p.class_of(0x100), InstructionClass::Unpredictable);
    }

    #[test]
    fn unpredictable_counts_as_incorrect_even_on_zero() {
        let mut p = classified();
        let mut x = 1u64;
        for _ in 0..40 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
            p.access(0x100, x);
        }
        assert_eq!(p.class_of(0x100), InstructionClass::Unpredictable);
        // Even a value of 0 (matching the dummy prediction) is not a hit.
        assert!(!p.access(0x100, 0).correct);
    }

    #[test]
    fn census_reflects_assignments() {
        let mut p = classified();
        for i in 0..40u64 {
            p.access(0x40, 11 * i); // stride
            p.access(0x80, 5); // constant
        }
        let census = p.census();
        assert_eq!(census.stride, 1);
        assert_eq!(census.last_value, 1);
        assert_eq!(census.fcm, 0);
        assert_eq!(census.unpredictable, 0);
    }

    #[test]
    fn assigned_instructions_only_touch_their_table() {
        // After assignment to stride, the FCM must not be trained by this
        // instruction any more: its prediction for the pc stays frozen.
        let mut p = classified();
        for i in 0..40u64 {
            p.access(0x40, 11 * i);
        }
        assert_eq!(p.class_of(0x40), InstructionClass::Stride);
        let frozen = p.fcm.predict(0x40);
        for i in 40..80u64 {
            p.access(0x40, 11 * i);
        }
        assert_eq!(
            p.fcm.predict(0x40),
            frozen,
            "FCM must be left alone after assignment"
        );
    }

    #[test]
    fn storage_sums_subpredictors_and_classifier() {
        let p = classified();
        let expected = p.lvp.storage().total_bits()
            + p.stride.storage().total_bits()
            + p.fcm.storage().total_bits()
            + (1 << 12) * 3;
        assert_eq!(p.storage().total_bits(), expected);
    }

    #[test]
    fn name_mentions_classification() {
        assert!(classified().name().starts_with("classified(2^12"));
    }
}
