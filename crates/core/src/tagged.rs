use crate::error::{check_table_bits, ConfigError};
use crate::hash::HashFunction;
use crate::predictor::{L2Indexed, ValuePredictor};
use crate::storage::StorageCost;
use crate::DEFAULT_VALUE_BITS;

/// A DFCM prediction qualified by the confidence estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfidentPrediction {
    /// The predicted value (always produced).
    pub value: u64,
    /// Whether the estimator would issue this prediction to the pipeline.
    pub confident: bool,
}

/// A predictor that can qualify its predictions with a confidence verdict.
///
/// The evaluation harness uses this to measure the coverage/accuracy
/// trade-off of confidence estimation: `predict_confident` must return the
/// same value `predict` would, plus the issue decision.
pub trait ConfidencePredictor: ValuePredictor {
    /// Predicts and reports whether the prediction would be issued.
    fn predict_confident(&self, pc: u64) -> ConfidentPrediction;
}

/// The DFCM with the hash-alias-tracking confidence estimator the paper
/// *suggests* at the end of §4.2 but does not evaluate:
///
/// > "the design of a confidence estimator for a (D)FCM predictor should
/// > include tagging the level-2 table with some information to track
/// > hash-aliasing … Some bits of a second hashing function, orthogonal to
/// > the main one, seems to be a good choice for the tag."
///
/// Each level-1 entry maintains a *second* hashed history using a
/// different fold shift, so it evolves orthogonally to the index hash;
/// its low `tag_bits` bits are stored in the level-2 entry on update and
/// compared on prediction. A tag mismatch means the entry was last written
/// under a different context (hash aliasing — the dominant misprediction
/// source in Figure 14) and the prediction is flagged unconfident. A small
/// per-entry saturating counter additionally vets entries whose
/// predictions have been failing.
///
/// ```
/// use dfcm::{TaggedDfcmPredictor, ValuePredictor};
///
/// # fn main() -> Result<(), dfcm::ConfigError> {
/// let mut p = TaggedDfcmPredictor::builder().l1_bits(8).l2_bits(8).build()?;
/// // Warm a stride; predictions become confident and correct.
/// for i in 0..50u64 {
///     p.access(0x40, 7 * i);
/// }
/// let q = p.predict_confident(0x40);
/// assert!(q.confident);
/// assert_eq!(q.value, 7 * 50);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TaggedDfcmPredictor {
    last: Vec<u64>,
    hist: Vec<u64>,
    /// Second, orthogonal hashed history per level-1 entry.
    tag_hist: Vec<u64>,
    l2: Vec<TaggedEntry>,
    l1_mask: usize,
    l1_bits: u32,
    l2_bits: u32,
    hash: HashFunction,
    tag_bits: u32,
    conf_threshold: u8,
    value_bits: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct TaggedEntry {
    diff: u64,
    tag: u16,
    confidence: u8,
}

/// Builder for [`TaggedDfcmPredictor`].
#[derive(Debug, Clone)]
pub struct TaggedDfcmBuilder {
    l1_bits: u32,
    l2_bits: u32,
    hash: HashFunction,
    tag_bits: u32,
    conf_bits: u32,
    conf_threshold: u8,
    value_bits: u32,
}

impl Default for TaggedDfcmBuilder {
    fn default() -> Self {
        TaggedDfcmBuilder {
            l1_bits: 12,
            l2_bits: 12,
            hash: HashFunction::FsR5,
            tag_bits: 4,
            conf_bits: 2,
            conf_threshold: 2,
            value_bits: DEFAULT_VALUE_BITS,
        }
    }
}

impl TaggedDfcmBuilder {
    /// Sets the level-1 table to `2^bits` entries (default 12).
    pub fn l1_bits(&mut self, bits: u32) -> &mut Self {
        self.l1_bits = bits;
        self
    }

    /// Sets the level-2 table to `2^bits` entries (default 12).
    pub fn l2_bits(&mut self, bits: u32) -> &mut Self {
        self.l2_bits = bits;
        self
    }

    /// Selects the (primary) history hash (default FS R-5).
    pub fn hash(&mut self, hash: HashFunction) -> &mut Self {
        self.hash = hash;
        self
    }

    /// Width of the stored tag from the orthogonal hash, 0–16 bits
    /// (default 4; 0 disables tagging, leaving only the counter).
    pub fn tag_bits(&mut self, bits: u32) -> &mut Self {
        self.tag_bits = bits;
        self
    }

    /// Confidence-counter threshold: a prediction is confident only when
    /// the entry's counter is ≥ this value (default 2, with a 2-bit
    /// counter saturating at 3). 0 disables the counter test.
    pub fn conf_threshold(&mut self, threshold: u8) -> &mut Self {
        self.conf_threshold = threshold;
        self
    }

    /// Builds the predictor.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid table exponents, a tag width
    /// above 16, or a threshold above the counter maximum (3).
    pub fn build(&self) -> Result<TaggedDfcmPredictor, ConfigError> {
        check_table_bits("l1_bits", self.l1_bits)?;
        check_table_bits("l2_bits", self.l2_bits)?;
        if self.tag_bits > 16 {
            return Err(ConfigError::Width {
                parameter: "tag_bits",
                value: self.tag_bits,
                min: 0,
                max: 16,
            });
        }
        if self.conf_threshold > 3 {
            return Err(ConfigError::Width {
                parameter: "conf_threshold",
                value: u32::from(self.conf_threshold),
                min: 0,
                max: 3,
            });
        }
        let _ = self.conf_bits;
        self.hash.validate(self.l2_bits)?;
        let l1 = 1usize << self.l1_bits;
        Ok(TaggedDfcmPredictor {
            last: vec![0; l1],
            hist: vec![0; l1],
            tag_hist: vec![0; l1],
            l2: vec![TaggedEntry::default(); 1 << self.l2_bits],
            l1_mask: l1 - 1,
            l1_bits: self.l1_bits,
            l2_bits: self.l2_bits,
            hash: self.hash,
            tag_bits: self.tag_bits,
            conf_threshold: self.conf_threshold,
            value_bits: self.value_bits,
        })
    }
}

impl TaggedDfcmPredictor {
    /// Starts building a tagged DFCM.
    pub fn builder() -> TaggedDfcmBuilder {
        TaggedDfcmBuilder::default()
    }

    /// The configured tag width in bits.
    pub fn tag_bits(&self) -> u32 {
        self.tag_bits
    }

    /// The configured confidence threshold.
    pub fn conf_threshold(&self) -> u8 {
        self.conf_threshold
    }

    fn l1_index(&self, pc: u64) -> usize {
        crate::predictor::pc_index(pc, self.l1_mask)
    }

    /// The orthogonal hash: same incremental fold idea as FS R-5 but with
    /// a shift of 3 so the two histories drift apart ("orthogonal"), over
    /// a 16-bit register from which the tag is drawn.
    fn tag_update(old: u64, diff: u64) -> u64 {
        ((old << 3) ^ HashFunction::fold(diff, 16)) & 0xFFFF
    }

    fn current_tag(&self, i1: usize) -> u16 {
        if self.tag_bits == 0 {
            0
        } else {
            (self.tag_hist[i1] & ((1u64 << self.tag_bits) - 1)) as u16
        }
    }

    /// Predicts and reports whether the confidence estimator would issue
    /// the prediction: the stored tag must match the current orthogonal
    /// hash and the entry's confidence counter must reach the threshold.
    pub fn predict_confident(&self, pc: u64) -> ConfidentPrediction {
        let i1 = self.l1_index(pc);
        let entry = self.l2[self.hist[i1] as usize];
        let tag_ok = self.tag_bits == 0 || entry.tag == self.current_tag(i1);
        let conf_ok = entry.confidence >= self.conf_threshold;
        ConfidentPrediction {
            value: self.last[i1].wrapping_add(entry.diff),
            confident: tag_ok && conf_ok,
        }
    }
}

impl ValuePredictor for TaggedDfcmPredictor {
    fn predict(&mut self, pc: u64) -> u64 {
        self.predict_confident(pc).value
    }

    fn update(&mut self, pc: u64, actual: u64) {
        let i1 = self.l1_index(pc);
        let h = self.hist[i1];
        let i2 = h as usize;
        let diff = actual.wrapping_sub(self.last[i1]);
        let tag = self.current_tag(i1);
        let entry = &mut self.l2[i2];
        let was_correct = entry.diff == diff;
        // Train the counter before overwriting: correct re-confirmation
        // strengthens, a different outcome resets confidence.
        entry.confidence = if was_correct {
            (entry.confidence + 1).min(3)
        } else {
            0
        };
        entry.diff = diff;
        entry.tag = tag;
        self.hist[i1] = self.hash.fold_update(h, diff, self.l2_bits);
        self.tag_hist[i1] = Self::tag_update(self.tag_hist[i1], diff);
        self.last[i1] = actual;
    }

    fn storage(&self) -> StorageCost {
        let l1 = self.last.len() as u64;
        let l2 = self.l2.len() as u64;
        StorageCost::new()
            .with("L1 last values", l1 * self.value_bits as u64)
            .with("L1 hashed histories", l1 * self.l2_bits as u64)
            .with("L1 tag histories", l1 * 16)
            .with("L2 differences", l2 * self.value_bits as u64)
            .with("L2 tags", l2 * self.tag_bits as u64)
            .with("L2 confidence", l2 * 2)
    }

    fn name(&self) -> String {
        format!(
            "dfcm+tag(l1=2^{},l2=2^{},t{},c{})",
            self.l1_bits, self.l2_bits, self.tag_bits, self.conf_threshold
        )
    }
}

impl ConfidencePredictor for TaggedDfcmPredictor {
    fn predict_confident(&self, pc: u64) -> ConfidentPrediction {
        TaggedDfcmPredictor::predict_confident(self, pc)
    }
}

impl L2Indexed for TaggedDfcmPredictor {
    fn l2_index(&self, pc: u64) -> usize {
        self.hist[self.l1_index(pc)] as usize
    }

    fn l2_entries(&self) -> usize {
        self.l2.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfcm::DfcmPredictor;

    fn tagged(l1: u32, l2: u32) -> TaggedDfcmPredictor {
        TaggedDfcmPredictor::builder()
            .l1_bits(l1)
            .l2_bits(l2)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert!(TaggedDfcmPredictor::builder().tag_bits(17).build().is_err());
        assert!(TaggedDfcmPredictor::builder()
            .conf_threshold(4)
            .build()
            .is_err());
        assert!(TaggedDfcmPredictor::builder().l1_bits(31).build().is_err());
        assert!(TaggedDfcmPredictor::builder().build().is_ok());
    }

    #[test]
    fn value_predictions_match_plain_dfcm() {
        // With the same geometry and hash, the tagged variant's *values*
        // must be identical to the plain DFCM's — tags only gate issue.
        let mut plain = DfcmPredictor::builder()
            .l1_bits(8)
            .l2_bits(10)
            .build()
            .unwrap();
        let mut tagged = tagged(8, 10);
        for i in 0..5000u64 {
            let pc = 4 * (i % 37);
            let v = (i * i) % 1000;
            assert_eq!(plain.predict(pc), tagged.predict(pc), "i={i}");
            plain.update(pc, v);
            tagged.update(pc, v);
        }
    }

    #[test]
    fn steady_pattern_becomes_confident() {
        let mut p = tagged(8, 10);
        for i in 0..50u64 {
            p.access(0x10, 3 * i);
        }
        assert!(p.predict_confident(0x10).confident);
    }

    #[test]
    fn cold_entry_is_not_confident() {
        let p = tagged(8, 10);
        assert!(
            !p.predict_confident(0x10).confident,
            "cold counter must gate issue"
        );
    }

    #[test]
    fn hash_alias_suppresses_confidence() {
        // Two instructions with different contexts that collide in a tiny
        // level-2 table: the tags keep flipping, so at least one side is
        // flagged unconfident most of the time even though the shared
        // entry keeps serving both.
        let mut p = TaggedDfcmPredictor::builder()
            .l1_bits(6)
            .l2_bits(2)
            .conf_threshold(1)
            .build()
            .unwrap();
        let mut unconfident_mispredictions = 0u32;
        let mut confident_mispredictions = 0u32;
        for i in 0..4000u64 {
            for (pc, v) in [(0x10u64, 17 * i), (0x20, (i * i) % 97)] {
                let q = p.predict_confident(pc);
                let correct = q.value == v;
                if !correct {
                    if q.confident {
                        confident_mispredictions += 1;
                    } else {
                        unconfident_mispredictions += 1;
                    }
                }
                p.update(pc, v);
            }
        }
        assert!(
            unconfident_mispredictions > confident_mispredictions,
            "tags should catch most collision-driven mispredictions: \
             confident {confident_mispredictions}, unconfident {unconfident_mispredictions}"
        );
    }

    #[test]
    fn issued_predictions_are_more_accurate_than_all() {
        // The estimator's whole point: accuracy over issued predictions
        // beats accuracy over all predictions on a mixed workload.
        let mut p = tagged(8, 8);
        let mut all = (0u64, 0u64);
        let mut issued = (0u64, 0u64);
        let mut x = 7u64;
        for i in 0..20_000u64 {
            let (pc, v) = match i % 4 {
                0 => (0x10, 5 * (i / 4)),                          // stride
                1 => (0x20, 42),                                   // constant
                2 => (0x30, [9u64, 2, 6][((i / 4) % 3) as usize]), // context
                _ => {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (0x40, x >> 40) // random
                }
            };
            let q = p.predict_confident(pc);
            let correct = q.value == v;
            all.0 += 1;
            all.1 += u64::from(correct);
            if q.confident {
                issued.0 += 1;
                issued.1 += u64::from(correct);
            }
            p.update(pc, v);
        }
        let acc_all = all.1 as f64 / all.0 as f64;
        let acc_issued = issued.1 as f64 / issued.0.max(1) as f64;
        assert!(issued.0 > all.0 / 4, "estimator must not refuse everything");
        assert!(
            acc_issued > acc_all + 0.1,
            "issued {acc_issued:.3} must clearly beat all {acc_all:.3}"
        );
    }

    #[test]
    fn zero_tag_bits_leaves_counter_only() {
        let mut p = TaggedDfcmPredictor::builder()
            .l1_bits(6)
            .l2_bits(8)
            .tag_bits(0)
            .build()
            .unwrap();
        for i in 0..20u64 {
            p.access(0x10, i);
        }
        assert!(p.predict_confident(0x10).confident);
        assert_eq!(p.tag_bits(), 0);
    }

    #[test]
    fn storage_includes_tags_and_counters() {
        let p = tagged(10, 10);
        let bits = p.storage().total_bits();
        let l1 = 1u64 << 10;
        let l2 = 1u64 << 10;
        assert_eq!(
            bits,
            l1 * 32 + l1 * 10 + l1 * 16 + l2 * 32 + l2 * 4 + l2 * 2
        );
    }

    #[test]
    fn name_mentions_tagging() {
        assert_eq!(tagged(12, 12).name(), "dfcm+tag(l1=2^12,l2=2^12,t4,c2)");
    }
}
