//! Optional table-usage instrumentation for predictors.
//!
//! The paper's argument is about *table usage efficiency*: DFCM wins
//! because stride patterns collapse onto few level-2 entries, leaving
//! room for context patterns. [`TableStats`] makes that observable on
//! the real predictor objects — per-table occupancy and write/overwrite
//! counts, plus (for the two-level predictors) the paper's §4.2
//! aliasing classification via an embedded [`AliasAnalyzer`].
//!
//! Instrumentation is strictly opt-in through
//! [`ValuePredictor::enable_table_stats`](crate::ValuePredictor::enable_table_stats):
//! a predictor that never enables it carries one `Option` per table and
//! pays a single branch per update.

use crate::alias::AliasBreakdown;

/// Usage counters for one hardware table of a predictor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableUsage {
    /// Table name within the predictor (e.g. `l1`, `l2`, `table`).
    pub name: &'static str,
    /// Total number of entries.
    pub entries: u64,
    /// Entries written at least once since instrumentation was enabled.
    pub occupied: u64,
    /// Total writes.
    pub writes: u64,
    /// Writes that landed on an already-occupied entry.
    pub overwrites: u64,
}

impl TableUsage {
    /// Occupied entries as a percentage of the table size.
    pub fn occupancy_percent(&self) -> f64 {
        if self.entries == 0 {
            0.0
        } else {
            100.0 * self.occupied as f64 / self.entries as f64
        }
    }
}

/// A point-in-time view of a predictor's table usage.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// One entry per hardware table, in the predictor's own order.
    pub tables: Vec<TableUsage>,
    /// The §4.2 aliasing classification, for predictors that support it
    /// (FCM and DFCM).
    pub alias: Option<AliasBreakdown>,
}

/// Per-table write tracking used by instrumented predictors.
///
/// Occupancy is defined as "written at least once": predictor tables
/// start zero-filled and a zero entry is indistinguishable from an
/// untouched one, so the tracker keeps its own seen-bit per entry.
#[derive(Debug, Clone)]
pub(crate) struct TableTracker {
    name: &'static str,
    written: Vec<bool>,
    occupied: u64,
    writes: u64,
    overwrites: u64,
}

impl TableTracker {
    pub(crate) fn new(name: &'static str, entries: usize) -> Self {
        TableTracker {
            name,
            written: vec![false; entries],
            occupied: 0,
            writes: 0,
            overwrites: 0,
        }
    }

    /// Records one write to `index`.
    pub(crate) fn record(&mut self, index: usize) {
        self.writes += 1;
        if self.written[index] {
            self.overwrites += 1;
        } else {
            self.written[index] = true;
            self.occupied += 1;
        }
    }

    pub(crate) fn usage(&self) -> TableUsage {
        TableUsage {
            name: self.name,
            entries: self.written.len() as u64,
            occupied: self.occupied,
            writes: self.writes,
            overwrites: self.overwrites,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_counts_occupancy_and_overwrites() {
        let mut t = TableTracker::new("l2", 4);
        t.record(0);
        t.record(0);
        t.record(3);
        let u = t.usage();
        assert_eq!(u.name, "l2");
        assert_eq!(u.entries, 4);
        assert_eq!(u.occupied, 2);
        assert_eq!(u.writes, 3);
        assert_eq!(u.overwrites, 1);
        assert!((u.occupancy_percent() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn empty_table_has_zero_occupancy() {
        let u = TableUsage {
            name: "t",
            entries: 0,
            occupied: 0,
            writes: 0,
            overwrites: 0,
        };
        assert_eq!(u.occupancy_percent(), 0.0);
    }
}
