use std::fmt;

/// A saturating up/down counter with configurable width and step sizes.
///
/// The paper's stride predictor (§2.2, §4) uses a 3-bit counter that is
/// incremented by 1 on a correct prediction and decremented by 2 on a wrong
/// one; the stored stride is replaced only while the counter is below its
/// maximum. The same structure backs [`CounterMeta`](crate::CounterMeta)
/// hybrid selectors.
///
/// ```
/// use dfcm::SaturatingCounter;
///
/// let mut c = SaturatingCounter::paper_confidence();
/// assert_eq!(c.value(), 0);
/// for _ in 0..10 {
///     c.increment();
/// }
/// assert!(c.is_max()); // saturates at 7 for a 3-bit counter
/// c.decrement();
/// assert_eq!(c.value(), 5); // decrements by 2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaturatingCounter {
    value: u16,
    max: u16,
    inc: u16,
    dec: u16,
}

impl SaturatingCounter {
    /// Creates a counter of `bits` width that saturates at `2^bits - 1`,
    /// stepping up by `inc` and down by `dec`. The counter starts at 0.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 15.
    pub fn new(bits: u32, inc: u16, dec: u16) -> Self {
        assert!(
            bits > 0 && bits <= 15,
            "counter width must be in 1..=15, got {bits}"
        );
        SaturatingCounter {
            value: 0,
            max: (1u16 << bits) - 1,
            inc,
            dec,
        }
    }

    /// The 3-bit, +1/−2 counter used for stride confidence in the paper.
    pub fn paper_confidence() -> Self {
        SaturatingCounter::new(3, 1, 2)
    }

    /// Current counter value.
    pub fn value(&self) -> u16 {
        self.value
    }

    /// Maximum (saturation) value.
    pub fn max(&self) -> u16 {
        self.max
    }

    /// True if the counter is saturated at its maximum.
    pub fn is_max(&self) -> bool {
        self.value == self.max
    }

    /// True if the counter is in the upper half of its range (commonly used
    /// as a "taken"/"use B" decision threshold in meta-predictors).
    pub fn is_high(&self) -> bool {
        self.value > self.max / 2
    }

    /// Steps the counter up, saturating at the maximum.
    pub fn increment(&mut self) {
        self.value = self.value.saturating_add(self.inc).min(self.max);
    }

    /// Steps the counter down, saturating at zero.
    pub fn decrement(&mut self) {
        self.value = self.value.saturating_sub(self.dec);
    }

    /// Sets the counter to an exact value, as restored from a serialized
    /// predictor state.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` (leaving the counter untouched) when `value`
    /// exceeds the saturation maximum — a counter can never legally reach
    /// such a state, so the serialized blob is corrupt.
    pub fn set_value(&mut self, value: u16) -> Result<(), u16> {
        if value > self.max {
            return Err(value);
        }
        self.value = value;
        Ok(())
    }

    /// Width of this counter in storage bits.
    pub fn bits(&self) -> u32 {
        16 - self.max.leading_zeros()
    }
}

impl Default for SaturatingCounter {
    /// Returns the paper's 3-bit confidence counter.
    fn default() -> Self {
        SaturatingCounter::paper_confidence()
    }
}

impl fmt::Display for SaturatingCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.value, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = SaturatingCounter::new(3, 1, 2);
        assert_eq!(c.value(), 0);
        assert!(!c.is_max());
        assert!(!c.is_high());
    }

    #[test]
    fn saturates_at_max() {
        let mut c = SaturatingCounter::new(2, 1, 1);
        for _ in 0..100 {
            c.increment();
        }
        assert_eq!(c.value(), 3);
        assert!(c.is_max());
    }

    #[test]
    fn saturates_at_zero() {
        let mut c = SaturatingCounter::new(2, 1, 1);
        c.decrement();
        c.decrement();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn asymmetric_steps() {
        let mut c = SaturatingCounter::paper_confidence();
        for _ in 0..7 {
            c.increment();
        }
        assert_eq!(c.value(), 7);
        c.decrement();
        assert_eq!(c.value(), 5);
        c.decrement();
        c.decrement();
        c.decrement();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn is_high_threshold() {
        let mut c = SaturatingCounter::new(3, 1, 1); // max 7, high when > 3
        for _ in 0..3 {
            c.increment();
        }
        assert!(!c.is_high());
        c.increment();
        assert!(c.is_high());
    }

    #[test]
    fn bits_roundtrip() {
        for bits in 1..=15 {
            let c = SaturatingCounter::new(bits, 1, 1);
            assert_eq!(c.bits(), bits, "width {bits}");
        }
    }

    #[test]
    fn display_shows_value_and_max() {
        let c = SaturatingCounter::paper_confidence();
        assert_eq!(c.to_string(), "0/7");
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn zero_bits_panics() {
        let _ = SaturatingCounter::new(0, 1, 1);
    }
}
