use crate::predictor::{AccessOutcome, ValuePredictor};
use crate::storage::StorageCost;
use crate::table_stats::{TableStats, TableTracker};
use crate::DEFAULT_VALUE_BITS;

/// The last value predictor (Lipasti; paper §2.1).
///
/// Predicts that an instruction will produce the same value it produced the
/// previous time. The table is directly indexed by the low bits of the
/// program counter and stores one value per entry; it works best for
/// constant patterns.
///
/// ```
/// use dfcm::{LastValuePredictor, ValuePredictor};
///
/// let mut lvp = LastValuePredictor::new(8);
/// assert!(!lvp.access(0x400, 42).correct); // cold: tables start at 0
/// assert!(lvp.access(0x400, 42).correct); // constant value repeats
/// assert!(!lvp.access(0x400, 43).correct); // strides are not captured
/// ```
#[derive(Debug, Clone)]
pub struct LastValuePredictor {
    table: Vec<u64>,
    mask: usize,
    bits: u32,
    value_bits: u32,
    stats: Option<TableTracker>,
}

impl LastValuePredictor {
    /// Creates a predictor with a `2^bits`-entry table and the default
    /// 32-bit storage cost model.
    ///
    /// # Panics
    ///
    /// Panics if `bits` exceeds 30.
    pub fn new(bits: u32) -> Self {
        Self::with_value_bits(bits, DEFAULT_VALUE_BITS)
    }

    /// Creates a predictor whose storage cost is accounted at `value_bits`
    /// bits per stored value (prediction behaviour is unaffected; full
    /// values are always kept).
    ///
    /// # Panics
    ///
    /// Panics if `bits` exceeds 30 or `value_bits` is not in `1..=64`.
    pub fn with_value_bits(bits: u32, value_bits: u32) -> Self {
        assert!(bits <= 30, "table exponent must be <= 30, got {bits}");
        assert!(
            (1..=64).contains(&value_bits),
            "value width must be in 1..=64"
        );
        LastValuePredictor {
            table: vec![0; 1 << bits],
            mask: (1usize << bits) - 1,
            bits,
            value_bits,
            stats: None,
        }
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Serializes the mutable table state (not the configuration) as a
    /// flat word vector: the last-value table, in index order. Paired
    /// with [`load_state_words`](LastValuePredictor::load_state_words)
    /// for crash-consistent snapshot/restore of serving sessions.
    pub fn state_words(&self) -> Vec<u64> {
        self.table.clone()
    }

    /// Restores state captured by
    /// [`state_words`](LastValuePredictor::state_words) into an
    /// identically configured predictor. Table-stats instrumentation, if
    /// enabled, keeps counting from the restored state.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::State`](crate::ConfigError) when the word
    /// count does not match this configuration; the predictor is left
    /// unchanged.
    pub fn load_state_words(&mut self, words: &[u64]) -> Result<(), crate::ConfigError> {
        if words.len() != self.table.len() {
            return Err(crate::ConfigError::State {
                reason: format!(
                    "lvp state holds {} words, table needs {}",
                    words.len(),
                    self.table.len()
                ),
            });
        }
        self.table.copy_from_slice(words);
        Ok(())
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        crate::predictor::pc_index(pc, self.mask)
    }
}

impl ValuePredictor for LastValuePredictor {
    fn predict(&mut self, pc: u64) -> u64 {
        self.table[self.index(pc)]
    }

    fn update(&mut self, pc: u64, actual: u64) {
        let idx = self.index(pc);
        self.table[idx] = actual;
        if let Some(stats) = &mut self.stats {
            stats.record(idx);
        }
    }

    // Fused predict+update: the table index is computed once per record.
    // Behaviour is bit-identical to the default predict-then-update.
    #[inline]
    fn access(&mut self, pc: u64, actual: u64) -> AccessOutcome {
        let idx = self.index(pc);
        let predicted = self.table[idx];
        self.table[idx] = actual;
        if let Some(stats) = &mut self.stats {
            stats.record(idx);
        }
        AccessOutcome {
            predicted,
            correct: predicted == actual,
        }
    }

    fn storage(&self) -> StorageCost {
        StorageCost::new().with(
            "last values",
            self.table.len() as u64 * self.value_bits as u64,
        )
    }

    fn name(&self) -> String {
        format!("lvp(2^{})", self.bits)
    }

    fn enable_table_stats(&mut self) {
        if self.stats.is_none() {
            self.stats = Some(TableTracker::new("table", self.table.len()));
        }
    }

    fn table_stats(&self) -> Option<TableStats> {
        self.stats.as_ref().map(|s| TableStats {
            tables: vec![s.usage()],
            alias: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_repeated_value() {
        let mut lvp = LastValuePredictor::new(4);
        lvp.update(3, 99);
        assert_eq!(lvp.predict(3), 99);
    }

    #[test]
    fn distinct_pcs_use_distinct_entries() {
        let mut lvp = LastValuePredictor::new(4);
        lvp.update(0, 1);
        lvp.update(4, 2); // adjacent 4-byte-aligned instructions
        assert_eq!(lvp.predict(0), 1);
        assert_eq!(lvp.predict(4), 2);
    }

    #[test]
    fn pcs_alias_modulo_table_size() {
        // Indexing drops the two always-zero PC bits, so a 16-entry table
        // wraps at a 64-byte code distance.
        let mut lvp = LastValuePredictor::new(4);
        lvp.update(0, 1);
        lvp.update(64, 2); // same entry as pc 0
        assert_eq!(lvp.predict(0), 2);
    }

    #[test]
    fn perfect_on_constant_stream() {
        let mut lvp = LastValuePredictor::new(6);
        lvp.update(7, 5);
        let correct = (0..100).filter(|_| lvp.access(7, 5).correct).count();
        assert_eq!(correct, 100);
    }

    #[test]
    fn poor_on_stride_stream() {
        let mut lvp = LastValuePredictor::new(6);
        let correct = (0..100u64)
            .filter(|i| lvp.access(7, 10 + i).correct)
            .count();
        assert_eq!(correct, 0);
    }

    #[test]
    fn storage_matches_paper_model() {
        let lvp = LastValuePredictor::new(10);
        assert_eq!(lvp.storage().total_bits(), 1024 * 32);
        let narrow = LastValuePredictor::with_value_bits(10, 64);
        assert_eq!(narrow.storage().total_bits(), 1024 * 64);
    }

    #[test]
    fn name_includes_size() {
        assert_eq!(LastValuePredictor::new(12).name(), "lvp(2^12)");
    }
}
