use std::error::Error;
use std::fmt;

/// Error returned when a predictor is configured with invalid parameters.
///
/// Produced by the `build()` methods of the predictor builders, e.g.
/// [`FcmBuilder::build`](crate::FcmBuilder::build).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A table-size exponent is outside the supported range.
    ///
    /// Table sizes are given as power-of-two exponents; exponents above 30
    /// would allocate more than a gibientry table and are rejected.
    TableBits {
        /// Which parameter was invalid (e.g. `"l1_bits"`).
        parameter: &'static str,
        /// The rejected value.
        value: u32,
        /// Maximum allowed value.
        max: u32,
    },
    /// A bit-width parameter (e.g. stored stride width) is invalid.
    Width {
        /// Which parameter was invalid.
        parameter: &'static str,
        /// The rejected value.
        value: u32,
        /// Inclusive lower bound.
        min: u32,
        /// Inclusive upper bound.
        max: u32,
    },
    /// A hash function was configured inconsistently with the table size
    /// (e.g. a concatenating hash whose order does not divide the index
    /// width).
    Hash {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A serialized predictor state does not fit this configuration
    /// (wrong word count, or a table entry outside its legal range).
    /// Produced by the `load_state_words` restore methods; state blobs
    /// cross a trust boundary (snapshot files), so they are validated
    /// rather than assumed well-formed.
    State {
        /// Human-readable description of the mismatch.
        reason: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TableBits {
                parameter,
                value,
                max,
            } => {
                write!(f, "{parameter} = {value} exceeds the maximum of {max}")
            }
            ConfigError::Width {
                parameter,
                value,
                min,
                max,
            } => {
                write!(
                    f,
                    "{parameter} = {value} is outside the range {min}..={max}"
                )
            }
            ConfigError::Hash { reason } => write!(f, "invalid hash configuration: {reason}"),
            ConfigError::State { reason } => write!(f, "incompatible predictor state: {reason}"),
        }
    }
}

impl Error for ConfigError {}

/// Upper bound on table-size exponents accepted by the builders.
pub(crate) const MAX_TABLE_BITS: u32 = 30;

pub(crate) fn check_table_bits(parameter: &'static str, value: u32) -> Result<(), ConfigError> {
    if value > MAX_TABLE_BITS {
        Err(ConfigError::TableBits {
            parameter,
            value,
            max: MAX_TABLE_BITS,
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = ConfigError::TableBits {
            parameter: "l2_bits",
            value: 99,
            max: 30,
        };
        assert_eq!(err.to_string(), "l2_bits = 99 exceeds the maximum of 30");
        let err = ConfigError::Width {
            parameter: "stride_bits",
            value: 0,
            min: 1,
            max: 64,
        };
        assert!(err.to_string().contains("stride_bits"));
        let err = ConfigError::Hash {
            reason: "order must divide index width".into(),
        };
        assert!(err.to_string().contains("order"));
    }

    #[test]
    fn check_table_bits_boundaries() {
        assert!(check_table_bits("x", 0).is_ok());
        assert!(check_table_bits("x", MAX_TABLE_BITS).is_ok());
        assert!(check_table_bits("x", MAX_TABLE_BITS + 1).is_err());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }
}
