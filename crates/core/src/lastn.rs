use crate::predictor::ValuePredictor;
use crate::storage::StorageCost;
use crate::DEFAULT_VALUE_BITS;

/// The last-*n* value predictor of Burtscher and Zorn (reference \[2\] of
/// the paper, "Exploring last n value prediction").
///
/// Each entry keeps the `n` most recent distinct values produced by the
/// instruction, each with a small saturating vote counter; the prediction
/// is the stored value with the highest vote (most recently used wins
/// ties). This generalizes the last value predictor (`n = 1`) and captures
/// alternating or few-valued patterns (flags, NULL/non-NULL results) that
/// a single last value misses, without the table pressure of a context
/// predictor.
///
/// ```
/// use dfcm::{LastNValuePredictor, ValuePredictor};
///
/// let mut p = LastNValuePredictor::new(8, 4);
/// // An alternating pattern settles on the majority value.
/// for _ in 0..10 {
///     p.access(0x40, 1);
///     p.access(0x40, 1);
///     p.access(0x40, 0);
/// }
/// assert_eq!(p.predict(0x40), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LastNValuePredictor {
    entries: Vec<Entry>,
    mask: usize,
    bits: u32,
    n: usize,
    value_bits: u32,
}

#[derive(Debug, Clone)]
struct Entry {
    values: Vec<u64>,
    votes: Vec<u8>,
    /// Insertion clock for LRU replacement and MRU tie-breaks.
    stamps: Vec<u32>,
    clock: u32,
}

const VOTE_MAX: u8 = 15;

impl Entry {
    fn new(n: usize) -> Self {
        Entry {
            values: Vec::with_capacity(n),
            votes: Vec::new(),
            stamps: Vec::new(),
            clock: 0,
        }
    }

    fn best(&self) -> u64 {
        let mut best: Option<(u8, u32, u64)> = None;
        for i in 0..self.values.len() {
            let key = (self.votes[i], self.stamps[i], self.values[i]);
            if best.is_none_or(|b| (key.0, key.1) > (b.0, b.1)) {
                best = Some(key);
            }
        }
        best.map_or(0, |(_, _, v)| v)
    }

    fn train(&mut self, n: usize, actual: u64) {
        self.clock = self.clock.wrapping_add(1);
        if let Some(i) = self.values.iter().position(|&v| v == actual) {
            self.votes[i] = (self.votes[i] + 2).min(VOTE_MAX);
            self.stamps[i] = self.clock;
            for (j, vote) in self.votes.iter_mut().enumerate() {
                if j != i {
                    *vote = vote.saturating_sub(1);
                }
            }
            return;
        }
        if self.values.len() < n {
            self.values.push(actual);
            self.votes.push(1);
            self.stamps.push(self.clock);
            return;
        }
        // Replace the lowest-vote (oldest on ties) slot.
        let mut victim = 0;
        for i in 1..self.values.len() {
            if (self.votes[i], self.stamps[i]) < (self.votes[victim], self.stamps[victim]) {
                victim = i;
            }
        }
        self.values[victim] = actual;
        self.votes[victim] = 1;
        self.stamps[victim] = self.clock;
    }
}

impl LastNValuePredictor {
    /// Creates a predictor with a `2^bits`-entry table keeping `n` values
    /// per entry.
    ///
    /// # Panics
    ///
    /// Panics if `bits` exceeds 30 or `n` is not in `1..=16`.
    pub fn new(bits: u32, n: usize) -> Self {
        Self::with_value_bits(bits, n, DEFAULT_VALUE_BITS)
    }

    /// As [`new`](LastNValuePredictor::new) with an explicit cost-model
    /// value width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` exceeds 30, `n` is not in `1..=16`, or
    /// `value_bits` is not in `1..=64`.
    pub fn with_value_bits(bits: u32, n: usize, value_bits: u32) -> Self {
        assert!(bits <= 30, "table exponent must be <= 30, got {bits}");
        assert!((1..=16).contains(&n), "n must be in 1..=16, got {n}");
        assert!(
            (1..=64).contains(&value_bits),
            "value width must be in 1..=64"
        );
        LastNValuePredictor {
            entries: vec![Entry::new(n); 1 << bits],
            mask: (1usize << bits) - 1,
            bits,
            n,
            value_bits,
        }
    }

    /// Number of values kept per entry.
    pub fn n(&self) -> usize {
        self.n
    }

    fn index(&self, pc: u64) -> usize {
        crate::predictor::pc_index(pc, self.mask)
    }
}

impl ValuePredictor for LastNValuePredictor {
    fn predict(&mut self, pc: u64) -> u64 {
        self.entries[self.index(pc)].best()
    }

    fn update(&mut self, pc: u64, actual: u64) {
        let idx = self.index(pc);
        let n = self.n;
        self.entries[idx].train(n, actual);
    }

    fn storage(&self) -> StorageCost {
        let e = self.entries.len() as u64;
        StorageCost::new()
            .with("values", e * self.n as u64 * self.value_bits as u64)
            .with("vote counters", e * self.n as u64 * 4)
    }

    fn name(&self) -> String {
        format!("last{}(2^{})", self.n, self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n1_behaves_like_last_value_on_constants() {
        let mut p = LastNValuePredictor::new(4, 1);
        p.update(0, 9);
        assert_eq!(p.predict(0), 9);
        p.update(0, 9);
        assert_eq!(p.predict(0), 9);
    }

    #[test]
    fn captures_alternating_pattern_majority() {
        let mut p = LastNValuePredictor::new(4, 4);
        let mut correct = 0;
        for _ in 0..50 {
            correct += usize::from(p.access(0, 7).correct);
            correct += usize::from(p.access(0, 7).correct);
            correct += usize::from(p.access(0, 3).correct);
        }
        // Plain last-value would score 50 (only on the second 7);
        // keeping both candidates scores the two 7s of each triple.
        assert!(correct >= 95, "got {correct}");
    }

    #[test]
    fn small_value_sets_are_fully_retained() {
        let mut p = LastNValuePredictor::new(4, 4);
        for &v in [10u64, 20, 30].iter().cycle().take(60) {
            p.update(0, v);
        }
        let e = &p.entries[0];
        let mut stored = e.values.clone();
        stored.sort_unstable();
        assert_eq!(stored, vec![10, 20, 30]);
    }

    #[test]
    fn eviction_replaces_lowest_vote() {
        let mut p = LastNValuePredictor::new(4, 2);
        for _ in 0..8 {
            p.update(0, 1); // strong votes
        }
        p.update(0, 2); // second slot
        p.update(0, 3); // must evict the weak 2, not the strong 1
        assert!(p.entries[0].values.contains(&1));
        assert!(p.entries[0].values.contains(&3));
    }

    #[test]
    fn storage_scales_with_n() {
        let a = LastNValuePredictor::new(8, 1).storage().total_bits();
        let b = LastNValuePredictor::new(8, 4).storage().total_bits();
        assert_eq!(b, 4 * a);
    }

    #[test]
    fn beats_lvp_on_few_valued_streams() {
        use crate::lvp::LastValuePredictor;
        let pattern = [5u64, 5, 9, 5, 5, 9, 9, 5];
        let mut lastn = LastNValuePredictor::new(6, 4);
        let mut lvp = LastValuePredictor::new(6);
        let mut n_score = 0;
        let mut lvp_score = 0;
        for &v in pattern.iter().cycle().take(400) {
            n_score += usize::from(lastn.access(0, v).correct);
            lvp_score += usize::from(lvp.access(0, v).correct);
        }
        assert!(n_score > lvp_score, "last-n {n_score} vs lvp {lvp_score}");
    }

    #[test]
    fn name_and_accessors() {
        let p = LastNValuePredictor::new(10, 3);
        assert_eq!(p.name(), "last3(2^10)");
        assert_eq!(p.n(), 3);
    }

    #[test]
    #[should_panic(expected = "n must be")]
    fn zero_n_rejected() {
        let _ = LastNValuePredictor::new(4, 0);
    }
}
