use std::collections::{HashMap, VecDeque};

use crate::alias::AnalyzedKind;
use crate::predictor::ValuePredictor;
use crate::storage::StorageCost;

/// An idealized context predictor: per-instruction, unbounded, exact
/// (collision-free) context tables.
///
/// This is the information-theoretic ceiling for an order-*k* FCM or DFCM:
/// no level-1 aliasing (contexts are keyed by the full PC), no hash
/// aliasing (contexts are compared exactly), and no capacity pressure
/// (the table grows without bound). The gap between a real (D)FCM and its
/// ideal counterpart is therefore exactly the paper's "room for
/// improvement" left by finite tables and lossy hashing (§4.2: "the
/// hashing function remains responsible for the majority of the
/// mispredictions (59%), there is still plenty of room for improvement").
///
/// Not implementable in hardware; [`storage`](ValuePredictor::storage)
/// reports zero and [`IdealContextPredictor::entries_used`] reports the
/// memory the oracle actually accumulated.
///
/// One subtlety: because contexts are keyed per instruction, this oracle
/// forgoes the *constructive* sharing a real shared level-2 table gets
/// when several instructions produce identical patterns (the benign
/// `l2_pc` aliasing of the paper's Figure 12, which trains an entry for
/// all of them at once). On workloads dominated by such duplicated
/// patterns a real FCM can therefore exceed this "ideal" — it bounds
/// per-instruction context predictability, not cross-instruction pattern
/// sharing.
///
/// ```
/// use dfcm::{AnalyzedKind, IdealContextPredictor, ValuePredictor};
///
/// let mut p = IdealContextPredictor::new(AnalyzedKind::Fcm, 2);
/// let pattern = [3u64, 1, 4, 1, 5];
/// for _ in 0..3 {
///     for &v in &pattern {
///         p.access(0x40, v);
///     }
/// }
/// let correct = pattern.iter().filter(|&&v| p.access(0x40, v).correct).count();
/// assert_eq!(correct, pattern.len());
/// ```
#[derive(Debug, Clone)]
pub struct IdealContextPredictor {
    kind: AnalyzedKind,
    order: usize,
    /// Per-PC recent history (values or diffs) and last value.
    streams: HashMap<u64, StreamState>,
    /// Exact context table: (pc, context) → next element.
    table: HashMap<(u64, Vec<u64>), u64>,
}

#[derive(Debug, Clone, Default)]
struct StreamState {
    history: VecDeque<u64>,
    last: u64,
}

impl IdealContextPredictor {
    /// Creates an oracle of the given kind and history order.
    ///
    /// # Panics
    ///
    /// Panics if `order` is 0 or greater than 16.
    pub fn new(kind: AnalyzedKind, order: usize) -> Self {
        assert!(
            (1..=16).contains(&order),
            "order must be in 1..=16, got {order}"
        );
        IdealContextPredictor {
            kind,
            order,
            streams: HashMap::new(),
            table: HashMap::new(),
        }
    }

    /// The analyzed predictor kind (value or difference contexts).
    pub fn kind(&self) -> AnalyzedKind {
        self.kind
    }

    /// The history order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of distinct (pc, context) entries the oracle has
    /// accumulated — the size a collision-free table would need.
    pub fn entries_used(&self) -> usize {
        self.table.len()
    }

    fn context_of(&self, pc: u64) -> (Vec<u64>, u64) {
        match self.streams.get(&pc) {
            Some(s) => (s.history.iter().copied().collect(), s.last),
            None => (Vec::new(), 0),
        }
    }
}

impl ValuePredictor for IdealContextPredictor {
    fn predict(&mut self, pc: u64) -> u64 {
        let (context, last) = self.context_of(pc);
        let element = self.table.get(&(pc, context)).copied().unwrap_or(0);
        match self.kind {
            AnalyzedKind::Fcm => element,
            AnalyzedKind::Dfcm => last.wrapping_add(element),
        }
    }

    fn update(&mut self, pc: u64, actual: u64) {
        let (context, last) = self.context_of(pc);
        let element = match self.kind {
            AnalyzedKind::Fcm => actual,
            AnalyzedKind::Dfcm => actual.wrapping_sub(last),
        };
        self.table.insert((pc, context), element);
        let state = self.streams.entry(pc).or_default();
        state.history.push_back(element);
        while state.history.len() > self.order {
            state.history.pop_front();
        }
        state.last = actual;
    }

    fn storage(&self) -> StorageCost {
        // An oracle has no hardware realization; see entries_used().
        StorageCost::new()
    }

    fn name(&self) -> String {
        let kind = match self.kind {
            AnalyzedKind::Fcm => "fcm",
            AnalyzedKind::Dfcm => "dfcm",
        };
        format!("ideal-{kind}(order={})", self.order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfcm::DfcmPredictor;
    use crate::fcm::FcmPredictor;

    #[test]
    fn learns_any_periodic_pattern_with_sufficient_order() {
        let mut p = IdealContextPredictor::new(AnalyzedKind::Fcm, 3);
        let pattern = [5u64, 5, 2, 5, 5, 9]; // needs order >= 3 to split the 5,5 contexts
        for _ in 0..4 {
            for &v in &pattern {
                p.access(0x10, v);
            }
        }
        let correct = pattern
            .iter()
            .filter(|&&v| p.access(0x10, v).correct)
            .count();
        assert_eq!(correct, pattern.len());
    }

    #[test]
    fn insufficient_order_stays_ambiguous() {
        // With order 1, context `5` is followed by 5, 2 and 9 — ambiguous.
        let mut p = IdealContextPredictor::new(AnalyzedKind::Fcm, 1);
        let pattern = [5u64, 5, 2, 5, 5, 9];
        let mut correct = 0;
        for _ in 0..20 {
            for &v in &pattern {
                correct += usize::from(p.access(0x10, v).correct);
            }
        }
        assert!(
            correct < 100,
            "order-1 oracle cannot be perfect here: {correct}"
        );
    }

    #[test]
    fn dfcm_kind_predicts_fresh_strides() {
        let mut p = IdealContextPredictor::new(AnalyzedKind::Dfcm, 2);
        let misses = (0..50u64)
            .filter(|&i| !p.access(0x10, 7 * i).correct)
            .count();
        assert!(misses <= 3, "warmup only, got {misses}");
    }

    #[test]
    fn upper_bounds_real_predictors_on_context_patterns() {
        // On interference-heavy workloads with *per-instruction-distinct*
        // patterns, the oracle must beat the real predictor of the same
        // order. (When many instructions produce the same pattern, a real
        // shared table can beat the per-PC oracle via constructive l2_pc
        // aliasing — the benign sharing of the paper's Figure 12; see the
        // type-level docs.)
        let mut ideal = IdealContextPredictor::new(AnalyzedKind::Fcm, 3);
        let mut real = FcmPredictor::builder()
            .l1_bits(6)
            .l2_bits(12)
            .build()
            .unwrap();
        let mut ideal_ok = 0u64;
        let mut real_ok = 0u64;
        for i in 0..30_000u64 {
            let pc = (i % 40) * 4;
            // Distinct per-PC periodic sequences: period and phase depend
            // on the pc, so no cross-instruction sharing is possible.
            let v = ((i / 40) * (pc + 13)) % (211 + pc);
            ideal_ok += u64::from(ideal.access(pc, v).correct);
            real_ok += u64::from(real.access(pc, v).correct);
        }
        assert!(ideal_ok >= real_ok, "ideal {ideal_ok} vs real {real_ok}");
    }

    #[test]
    fn per_pc_isolation_prevents_cross_instruction_aliasing() {
        let mut p = IdealContextPredictor::new(AnalyzedKind::Fcm, 2);
        // Two instructions with identical histories but different
        // successors: a shared-table predictor would fight; the oracle
        // keeps them apart.
        for _ in 0..10 {
            for &(pc, tail) in &[(0x10u64, 111u64), (0x20, 222)] {
                p.access(pc, 1);
                p.access(pc, 2);
                p.access(pc, tail);
            }
        }
        let mut correct = 0;
        for &(pc, tail) in &[(0x10u64, 111u64), (0x20, 222)] {
            p.access(pc, 1);
            p.access(pc, 2);
            correct += usize::from(p.access(pc, tail).correct);
        }
        assert_eq!(correct, 2);
    }

    #[test]
    fn entries_used_grows_with_contexts() {
        let mut p = IdealContextPredictor::new(AnalyzedKind::Dfcm, 2);
        for i in 0..100u64 {
            p.access(0x10, 3 * i);
        }
        // A pure stride collapses to very few difference contexts.
        let stride_entries = p.entries_used();
        assert!(stride_entries <= 4, "{stride_entries}");
        let mut q = IdealContextPredictor::new(AnalyzedKind::Fcm, 2);
        for i in 0..100u64 {
            q.access(0x10, 3 * i);
        }
        assert!(
            q.entries_used() > 90,
            "value contexts of a stride never repeat"
        );
    }

    #[test]
    fn matches_dfcm_on_collision_free_workload() {
        // On a single short pattern with a huge real table (no collisions,
        // matching order), real and ideal DFCM agree after warmup.
        let mut ideal = IdealContextPredictor::new(AnalyzedKind::Dfcm, 4);
        let mut real = DfcmPredictor::builder()
            .l1_bits(8)
            .l2_bits(20)
            .build()
            .unwrap();
        let pattern = [10u64, 30, 20, 50, 90];
        for _ in 0..6 {
            for &v in &pattern {
                ideal.access(0x40, v);
                real.access(0x40, v);
            }
        }
        for &v in pattern.iter().cycle().take(15) {
            assert_eq!(ideal.access(0x40, v).correct, real.access(0x40, v).correct);
        }
    }

    #[test]
    #[should_panic(expected = "order must be")]
    fn zero_order_rejected() {
        let _ = IdealContextPredictor::new(AnalyzedKind::Fcm, 0);
    }
}
