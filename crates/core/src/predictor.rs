use crate::storage::StorageCost;
use crate::table_stats::TableStats;

/// Result of one predict-then-update step on a value predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessOutcome {
    /// The value the predictor produced before seeing the actual result.
    pub predicted: u64,
    /// Whether `predicted` equalled the actual result.
    pub correct: bool,
}

/// A dynamic value predictor, indexed by instruction address.
///
/// The protocol mirrors hardware operation: for every predicted dynamic
/// instruction, [`predict`](ValuePredictor::predict) is called with the
/// program counter, and once the actual result is known
/// [`update`](ValuePredictor::update) trains the tables. The convenience
/// method [`access`](ValuePredictor::access) performs both and reports
/// whether the prediction was correct — trace-driven evaluation (the paper's
/// methodology, §4) is a fold of `access` over the trace.
///
/// Implementations are deterministic: the same sequence of calls always
/// produces the same predictions.
///
/// ```
/// use dfcm::{LastValuePredictor, ValuePredictor};
///
/// let mut lvp = LastValuePredictor::new(6);
/// lvp.update(0x40, 7);
/// assert_eq!(lvp.predict(0x40), 7);
/// assert!(lvp.access(0x40, 7).correct);
/// ```
pub trait ValuePredictor {
    /// Returns the predicted result for the instruction at `pc`.
    ///
    /// Prediction does not train any state; tables are only modified by
    /// [`update`](ValuePredictor::update). (Implementations take `&mut self`
    /// so they may keep internal statistics or scratch state.)
    fn predict(&mut self, pc: u64) -> u64;

    /// Trains the predictor with the `actual` result produced at `pc`.
    fn update(&mut self, pc: u64, actual: u64);

    /// Predicts, compares against `actual`, then updates.
    ///
    /// Implementations with oracle components (notably
    /// [`HybridPredictor`](crate::HybridPredictor) with
    /// [`PerfectMeta`](crate::PerfectMeta)) override this to give the oracle
    /// access to the actual value at selection time.
    fn access(&mut self, pc: u64, actual: u64) -> AccessOutcome {
        let predicted = self.predict(pc);
        self.update(pc, actual);
        AccessOutcome {
            predicted,
            correct: predicted == actual,
        }
    }

    /// The itemized table storage this configuration requires.
    fn storage(&self) -> StorageCost;

    /// A short human-readable name including the configuration, e.g.
    /// `"dfcm(l1=2^16,l2=2^12)"`. Used as a label in reports.
    fn name(&self) -> String;

    /// Turns on table-usage instrumentation (occupancy, writes,
    /// overwrites, and — where supported — the §4.2 aliasing
    /// classification). Counting starts from the current state; the
    /// default implementation ignores the request.
    fn enable_table_stats(&mut self) {}

    /// The usage counters collected since
    /// [`enable_table_stats`](ValuePredictor::enable_table_stats), or
    /// `None` if instrumentation is off or unsupported.
    fn table_stats(&self) -> Option<TableStats> {
        None
    }

    /// The aliasing class (§4.2 taxonomy) the most recent
    /// [`update`](ValuePredictor::update) /
    /// [`access`](ValuePredictor::access) fell into, or `None` when the
    /// predictor does not classify accesses or instrumentation is off.
    ///
    /// Phase-resolved observability reads this after each access to
    /// attribute per-window and per-PC mispredictions to the paper's
    /// aliasing classes without a second analyzer pass.
    fn last_alias_class(&self) -> Option<crate::AliasClass> {
        None
    }
}

impl<P: ValuePredictor + ?Sized> ValuePredictor for Box<P> {
    fn predict(&mut self, pc: u64) -> u64 {
        (**self).predict(pc)
    }

    fn update(&mut self, pc: u64, actual: u64) {
        (**self).update(pc, actual)
    }

    fn access(&mut self, pc: u64, actual: u64) -> AccessOutcome {
        (**self).access(pc, actual)
    }

    fn storage(&self) -> StorageCost {
        (**self).storage()
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn enable_table_stats(&mut self) {
        (**self).enable_table_stats()
    }

    fn table_stats(&self) -> Option<TableStats> {
        (**self).table_stats()
    }

    fn last_alias_class(&self) -> Option<crate::AliasClass> {
        (**self).last_alias_class()
    }
}

/// A two-level predictor whose level-2 index can be observed.
///
/// Used by [`StrideOccupancyProfiler`](crate::StrideOccupancyProfiler) to
/// attribute accesses to level-2 entries (the paper's Figures 6 and 9).
pub trait L2Indexed {
    /// The level-2 entry the *next* prediction for `pc` would read.
    fn l2_index(&self, pc: u64) -> usize;

    /// Number of entries in the level-2 table.
    fn l2_entries(&self) -> usize;
}

/// Computes a table index from an instruction address.
///
/// Instruction addresses are 4-byte aligned on the MIPS-like substrates
/// this crate is evaluated with (and on the paper's SimpleScalar), so the
/// two always-zero low bits are dropped before masking — otherwise a
/// `2^n`-entry table would only ever use a quarter of its entries.
#[inline]
pub(crate) fn pc_index(pc: u64, mask: usize) -> usize {
    (pc >> 2) as usize & mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lvp::LastValuePredictor;

    #[test]
    fn default_access_matches_predict_then_update() {
        let mut a = LastValuePredictor::new(4);
        let mut b = LastValuePredictor::new(4);
        for (pc, v) in [(1u64, 10u64), (2, 20), (1, 10), (1, 11), (2, 20)] {
            let predicted = a.predict(pc);
            a.update(pc, v);
            let out = b.access(pc, v);
            assert_eq!(out.predicted, predicted);
            assert_eq!(out.correct, predicted == v);
        }
    }

    #[test]
    fn fused_access_matches_predict_then_update_for_all_predictors() {
        // Every predictor overrides `access` with a fused single-index
        // implementation; it must stay bit-identical to the two-call
        // protocol, including under table-stats instrumentation.
        let make: Vec<fn() -> Box<dyn ValuePredictor>> = vec![
            || Box::new(crate::LastValuePredictor::new(4)),
            || Box::new(crate::StridePredictor::new(4)),
            || Box::new(crate::TwoDeltaStridePredictor::new(4)),
            || {
                Box::new(
                    crate::FcmPredictor::builder()
                        .l1_bits(4)
                        .l2_bits(8)
                        .build()
                        .unwrap(),
                )
            },
            || {
                Box::new(
                    crate::DfcmPredictor::builder()
                        .l1_bits(4)
                        .l2_bits(8)
                        .build()
                        .unwrap(),
                )
            },
        ];
        // A stream mixing constants, strides, resets and pc aliasing.
        let stream: Vec<(u64, u64)> = (0..500u64)
            .map(|i| (4 * (i % 21), (i / 7).wrapping_mul(3).wrapping_sub(i % 5)))
            .collect();
        for factory in make {
            let mut fused = factory();
            let mut split = factory();
            fused.enable_table_stats();
            split.enable_table_stats();
            for &(pc, v) in &stream {
                let predicted = split.predict(pc);
                split.update(pc, v);
                let out = fused.access(pc, v);
                assert_eq!(out.predicted, predicted, "{}", fused.name());
                assert_eq!(out.correct, predicted == v);
            }
            assert_eq!(fused.table_stats(), split.table_stats(), "{}", fused.name());
        }
    }

    #[test]
    fn last_alias_class_reconciles_with_breakdown() {
        // Per-access classes summed over the run must equal the
        // analyzer's aggregate breakdown — the invariant phase-resolved
        // attribution depends on. Also checks Box forwarding.
        let make: Vec<fn() -> Box<dyn ValuePredictor>> = vec![
            || {
                Box::new(
                    crate::FcmPredictor::builder()
                        .l1_bits(4)
                        .l2_bits(8)
                        .build()
                        .unwrap(),
                )
            },
            || {
                Box::new(
                    crate::DfcmPredictor::builder()
                        .l1_bits(4)
                        .l2_bits(8)
                        .build()
                        .unwrap(),
                )
            },
        ];
        for factory in make {
            let mut p = factory();
            assert_eq!(p.last_alias_class(), None);
            p.access(0x40, 1);
            assert_eq!(p.last_alias_class(), None, "no stats yet: {}", p.name());
            p.enable_table_stats();
            let mut counts = std::collections::BTreeMap::new();
            for i in 0..400u64 {
                p.access(4 * (i % 17), (i / 3).wrapping_mul(7).wrapping_sub(i % 4));
                let class = p.last_alias_class().expect("stats enabled");
                *counts.entry(class.label()).or_insert(0u64) += 1;
            }
            let alias = p.table_stats().unwrap().alias.unwrap();
            assert_eq!(alias.total(), 400, "{}", p.name());
            for class in crate::AliasClass::ALL {
                assert_eq!(
                    counts.get(class.label()).copied().unwrap_or(0),
                    alias.class_total(class),
                    "{} class {}",
                    p.name(),
                    class.label()
                );
            }
        }
        // Predictors without an analyzer always report None.
        let mut lvp = LastValuePredictor::new(4);
        lvp.enable_table_stats();
        lvp.access(0x40, 1);
        assert_eq!(lvp.last_alias_class(), None);
    }

    #[test]
    fn boxed_predictor_delegates() {
        let mut boxed: Box<dyn ValuePredictor> = Box::new(LastValuePredictor::new(4));
        boxed.update(5, 42);
        assert_eq!(boxed.predict(5), 42);
        assert!(boxed.access(5, 42).correct);
        assert!(boxed.storage().total_bits() > 0);
        assert!(boxed.name().contains("lvp"));
    }
}
