use crate::counter::SaturatingCounter;
use crate::predictor::{AccessOutcome, ValuePredictor};
use crate::storage::StorageCost;
use crate::table_stats::{TableStats, TableTracker};
use crate::DEFAULT_VALUE_BITS;

/// The confidence-guarded stride predictor used throughout the paper (§2.2).
///
/// Each entry holds a last value, a stride and a 3-bit saturating confidence
/// counter (+1 on correct, −2 on wrong). The prediction is
/// `last + stride`; the stored stride is replaced by the newly observed
/// difference only while the counter is *not* saturated, so a single
/// out-of-pattern value (e.g. a loop-variable reset) costs one
/// misprediction without destroying an established stride — the same
/// behaviour the two-delta method achieves with two stride fields.
///
/// The counter is excluded from [`storage`](ValuePredictor::storage)
/// accounting, following the paper ("the saturating counter is usually
/// already present to track the confidence, so no additional storage is
/// needed").
///
/// ```
/// use dfcm::{StridePredictor, ValuePredictor};
///
/// let mut sp = StridePredictor::new(8);
/// let mut correct = 0;
/// for i in 0..100u64 {
///     if sp.access(0x400, 7 + 3 * i).correct {
///         correct += 1;
///     }
/// }
/// assert!(correct >= 98); // two cold misses, then perfect
/// ```
#[derive(Debug, Clone)]
pub struct StridePredictor {
    // Struct-of-arrays storage: the hot path touches `last` and `stride`
    // on every access, so keeping each field contiguous maximizes cache
    // utility in a streaming pass over a trace.
    last: Vec<u64>,
    stride: Vec<u64>,
    confidence: Vec<SaturatingCounter>,
    mask: usize,
    bits: u32,
    value_bits: u32,
    stats: Option<TableTracker>,
}

impl StridePredictor {
    /// Creates a predictor with a `2^bits`-entry table.
    ///
    /// # Panics
    ///
    /// Panics if `bits` exceeds 30.
    pub fn new(bits: u32) -> Self {
        Self::with_value_bits(bits, DEFAULT_VALUE_BITS)
    }

    /// As [`new`](StridePredictor::new) with an explicit cost-model value
    /// width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` exceeds 30 or `value_bits` is not in `1..=64`.
    pub fn with_value_bits(bits: u32, value_bits: u32) -> Self {
        assert!(bits <= 30, "table exponent must be <= 30, got {bits}");
        assert!(
            (1..=64).contains(&value_bits),
            "value width must be in 1..=64"
        );
        StridePredictor {
            last: vec![0; 1 << bits],
            stride: vec![0; 1 << bits],
            confidence: vec![SaturatingCounter::default(); 1 << bits],
            mask: (1usize << bits) - 1,
            bits,
            value_bits,
            stats: None,
        }
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.last.len()
    }

    /// Serializes the mutable table state (not the configuration) as a
    /// flat word vector: the last-value column, the stride column, then
    /// the confidence-counter values, each in index order.
    pub fn state_words(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(3 * self.last.len());
        words.extend_from_slice(&self.last);
        words.extend_from_slice(&self.stride);
        words.extend(self.confidence.iter().map(|c| u64::from(c.value())));
        words
    }

    /// Restores state captured by
    /// [`state_words`](StridePredictor::state_words) into an identically
    /// configured predictor.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::State`](crate::ConfigError) when the word
    /// count does not match, or a serialized confidence value exceeds the
    /// counter's saturation maximum (a state no real counter can reach,
    /// so the blob is corrupt). Confidence values are validated before
    /// any column is written, so a failed load leaves the predictor
    /// unchanged.
    pub fn load_state_words(&mut self, words: &[u64]) -> Result<(), crate::ConfigError> {
        let n = self.last.len();
        if words.len() != 3 * n {
            return Err(crate::ConfigError::State {
                reason: format!(
                    "stride state holds {} words, table needs {}",
                    words.len(),
                    3 * n
                ),
            });
        }
        let (last, rest) = words.split_at(n);
        let (stride, confidence) = rest.split_at(n);
        for (i, &word) in confidence.iter().enumerate() {
            if u16::try_from(word).map_or(true, |v| v > self.confidence[i].max()) {
                return Err(crate::ConfigError::State {
                    reason: format!(
                        "stride confidence[{i}] = {word} exceeds the counter maximum {}",
                        self.confidence[i].max()
                    ),
                });
            }
        }
        self.last.copy_from_slice(last);
        self.stride.copy_from_slice(stride);
        for (counter, &word) in self.confidence.iter_mut().zip(confidence) {
            counter
                .set_value(word as u16)
                .expect("validated against max above");
        }
        Ok(())
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        crate::predictor::pc_index(pc, self.mask)
    }
}

impl ValuePredictor for StridePredictor {
    fn predict(&mut self, pc: u64) -> u64 {
        let idx = self.index(pc);
        self.last[idx].wrapping_add(self.stride[idx])
    }

    fn update(&mut self, pc: u64, actual: u64) {
        let idx = self.index(pc);
        let predicted = self.last[idx].wrapping_add(self.stride[idx]);
        let correct = predicted == actual;
        // The stride is replaced only while confidence is below saturation;
        // the pre-update counter value gates the replacement so that a
        // high-confidence stride survives a single reset (cf. two-delta).
        if !self.confidence[idx].is_max() {
            self.stride[idx] = actual.wrapping_sub(self.last[idx]);
        }
        if correct {
            self.confidence[idx].increment();
        } else {
            self.confidence[idx].decrement();
        }
        self.last[idx] = actual;
        if let Some(stats) = &mut self.stats {
            stats.record(idx);
        }
    }

    // Fused predict+update with a single index computation; bit-identical
    // to the default predict-then-update.
    #[inline]
    fn access(&mut self, pc: u64, actual: u64) -> AccessOutcome {
        let idx = self.index(pc);
        let predicted = self.last[idx].wrapping_add(self.stride[idx]);
        let correct = predicted == actual;
        if !self.confidence[idx].is_max() {
            self.stride[idx] = actual.wrapping_sub(self.last[idx]);
        }
        if correct {
            self.confidence[idx].increment();
        } else {
            self.confidence[idx].decrement();
        }
        self.last[idx] = actual;
        if let Some(stats) = &mut self.stats {
            stats.record(idx);
        }
        AccessOutcome { predicted, correct }
    }

    fn storage(&self) -> StorageCost {
        let n = self.last.len() as u64;
        StorageCost::new()
            .with("last values", n * self.value_bits as u64)
            .with("strides", n * self.value_bits as u64)
    }

    fn name(&self) -> String {
        format!("stride(2^{})", self.bits)
    }

    fn enable_table_stats(&mut self) {
        if self.stats.is_none() {
            self.stats = Some(TableTracker::new("table", self.last.len()));
        }
    }

    fn table_stats(&self) -> Option<TableStats> {
        self.stats.as_ref().map(|s| TableStats {
            tables: vec![s.usage()],
            alias: None,
        })
    }
}

/// The two-delta stride predictor of Eickemeyer and Vassiliadis (§2.2).
///
/// Keeps a last value and two strides `s1` (used for prediction) and `s2`
/// (most recent difference). The new difference is always stored in `s2`;
/// `s1` is overwritten only when the same difference is observed twice in a
/// row, so a loop-variable reset costs exactly one misprediction.
///
/// ```
/// use dfcm::{TwoDeltaStridePredictor, ValuePredictor};
///
/// let mut sp = TwoDeltaStridePredictor::new(8);
/// // 0 1 2 3 0 1 2 3 — the reset from 3 to 0 mispredicts once per lap.
/// let mut misses = 0;
/// for lap in 0..10 {
///     for v in 0..4u64 {
///         if !sp.access(0x40, v).correct && lap > 0 {
///             misses += 1;
///         }
///     }
/// }
/// assert_eq!(misses, 9); // exactly one per post-warmup lap
/// ```
#[derive(Debug, Clone)]
pub struct TwoDeltaStridePredictor {
    // Struct-of-arrays storage, as in [`StridePredictor`].
    last: Vec<u64>,
    s1: Vec<u64>,
    s2: Vec<u64>,
    mask: usize,
    bits: u32,
    value_bits: u32,
    stats: Option<TableTracker>,
}

impl TwoDeltaStridePredictor {
    /// Creates a predictor with a `2^bits`-entry table.
    ///
    /// # Panics
    ///
    /// Panics if `bits` exceeds 30.
    pub fn new(bits: u32) -> Self {
        Self::with_value_bits(bits, DEFAULT_VALUE_BITS)
    }

    /// As [`new`](TwoDeltaStridePredictor::new) with an explicit cost-model
    /// value width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` exceeds 30 or `value_bits` is not in `1..=64`.
    pub fn with_value_bits(bits: u32, value_bits: u32) -> Self {
        assert!(bits <= 30, "table exponent must be <= 30, got {bits}");
        assert!(
            (1..=64).contains(&value_bits),
            "value width must be in 1..=64"
        );
        TwoDeltaStridePredictor {
            last: vec![0; 1 << bits],
            s1: vec![0; 1 << bits],
            s2: vec![0; 1 << bits],
            mask: (1usize << bits) - 1,
            bits,
            value_bits,
            stats: None,
        }
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.last.len()
    }

    /// Serializes the mutable table state (not the configuration) as a
    /// flat word vector: the last-value column, then the s1 (predicting)
    /// stride column, then the s2 (candidate) stride column.
    pub fn state_words(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(3 * self.last.len());
        words.extend_from_slice(&self.last);
        words.extend_from_slice(&self.s1);
        words.extend_from_slice(&self.s2);
        words
    }

    /// Restores state captured by
    /// [`state_words`](TwoDeltaStridePredictor::state_words) into an
    /// identically configured predictor.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::State`](crate::ConfigError) when the word
    /// count does not match this configuration; the predictor is left
    /// unchanged.
    pub fn load_state_words(&mut self, words: &[u64]) -> Result<(), crate::ConfigError> {
        let n = self.last.len();
        if words.len() != 3 * n {
            return Err(crate::ConfigError::State {
                reason: format!(
                    "2delta state holds {} words, table needs {}",
                    words.len(),
                    3 * n
                ),
            });
        }
        let (last, rest) = words.split_at(n);
        let (s1, s2) = rest.split_at(n);
        self.last.copy_from_slice(last);
        self.s1.copy_from_slice(s1);
        self.s2.copy_from_slice(s2);
        Ok(())
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        crate::predictor::pc_index(pc, self.mask)
    }
}

impl ValuePredictor for TwoDeltaStridePredictor {
    fn predict(&mut self, pc: u64) -> u64 {
        let idx = self.index(pc);
        self.last[idx].wrapping_add(self.s1[idx])
    }

    fn update(&mut self, pc: u64, actual: u64) {
        let idx = self.index(pc);
        let stride = actual.wrapping_sub(self.last[idx]);
        if stride == self.s2[idx] {
            self.s1[idx] = stride;
        }
        self.s2[idx] = stride;
        self.last[idx] = actual;
        if let Some(stats) = &mut self.stats {
            stats.record(idx);
        }
    }

    // Fused predict+update with a single index computation; bit-identical
    // to the default predict-then-update.
    #[inline]
    fn access(&mut self, pc: u64, actual: u64) -> AccessOutcome {
        let idx = self.index(pc);
        let predicted = self.last[idx].wrapping_add(self.s1[idx]);
        let stride = actual.wrapping_sub(self.last[idx]);
        if stride == self.s2[idx] {
            self.s1[idx] = stride;
        }
        self.s2[idx] = stride;
        self.last[idx] = actual;
        if let Some(stats) = &mut self.stats {
            stats.record(idx);
        }
        AccessOutcome {
            predicted,
            correct: predicted == actual,
        }
    }

    fn storage(&self) -> StorageCost {
        let n = self.last.len() as u64;
        StorageCost::new()
            .with("last values", n * self.value_bits as u64)
            .with("strides s1", n * self.value_bits as u64)
            .with("strides s2", n * self.value_bits as u64)
    }

    fn name(&self) -> String {
        format!("2delta(2^{})", self.bits)
    }

    fn enable_table_stats(&mut self) {
        if self.stats.is_none() {
            self.stats = Some(TableTracker::new("table", self.last.len()));
        }
    }

    fn table_stats(&self) -> Option<TableStats> {
        self.stats.as_ref().map(|s| TableStats {
            tables: vec![s.usage()],
            alias: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(p: &mut dyn ValuePredictor, pc: u64, values: &[u64]) -> usize {
        values.iter().filter(|&&v| p.access(pc, v).correct).count()
    }

    #[test]
    fn learns_stride_after_two_values() {
        let mut sp = StridePredictor::new(4);
        sp.access(0, 10);
        sp.access(0, 13);
        assert_eq!(sp.predict(0), 16);
    }

    #[test]
    fn perfect_on_constant_after_warmup() {
        let mut sp = StridePredictor::new(4);
        // Cold warmup: the first access trains stride 5-0=5, so the second
        // predicts 10; from the third access on the pattern is locked in.
        let correct = run(&mut sp, 1, &[5; 50]);
        assert_eq!(correct, 48);
    }

    #[test]
    fn reset_costs_one_misprediction_once_confident() {
        let mut sp = StridePredictor::new(4);
        // Warm up on 0..8 three laps so confidence saturates.
        for _ in 0..3 {
            for v in 0..8u64 {
                sp.access(2, v);
            }
        }
        // Now a full lap: only the reset (value 0 after 7) should miss.
        let mut misses = vec![];
        for v in 0..8u64 {
            if !sp.access(2, v).correct {
                misses.push(v);
            }
        }
        assert_eq!(misses, vec![0], "only the wrap-around value should miss");
    }

    #[test]
    fn stride_changes_when_confidence_low() {
        let mut sp = StridePredictor::new(4);
        sp.access(0, 0);
        sp.access(0, 10); // stride 10 learned (confidence low)
        sp.access(0, 12); // miss; stride updated to 2
        assert_eq!(sp.predict(0), 14);
    }

    #[test]
    fn two_delta_requires_stride_twice() {
        let mut sp = TwoDeltaStridePredictor::new(4);
        sp.update(0, 0);
        sp.update(0, 5); // s2 = 5, s1 still 0
        assert_eq!(sp.predict(0), 5);
        sp.update(0, 10); // stride 5 seen twice -> s1 = 5
        assert_eq!(sp.predict(0), 15);
    }

    #[test]
    fn two_delta_survives_reset() {
        let mut sp = TwoDeltaStridePredictor::new(4);
        for v in [0u64, 1, 2, 3, 4] {
            sp.update(0, v);
        }
        sp.update(0, 0); // reset: stride -4 goes to s2 only
        assert_eq!(sp.predict(0), 1, "s1 stride of 1 must survive the reset");
    }

    #[test]
    fn both_handle_wrapping_strides() {
        let mut sp = StridePredictor::new(4);
        let mut td = TwoDeltaStridePredictor::new(4);
        // Descending pattern: stride is negative, represented as wrapping u64.
        let values: Vec<u64> = (0..20).map(|i| 1_000u64.wrapping_sub(7 * i)).collect();
        assert!(run(&mut sp, 0, &values) >= 17);
        assert!(run(&mut td, 0, &values) >= 16);
    }

    #[test]
    fn storage_models() {
        let sp = StridePredictor::new(10);
        assert_eq!(sp.storage().total_bits(), 1024 * 64);
        let td = TwoDeltaStridePredictor::new(10);
        assert_eq!(td.storage().total_bits(), 1024 * 96);
    }

    #[test]
    fn names_include_size() {
        assert_eq!(StridePredictor::new(6).name(), "stride(2^6)");
        assert_eq!(TwoDeltaStridePredictor::new(6).name(), "2delta(2^6)");
    }

    #[test]
    fn pcs_alias_modulo_table_size() {
        // A 4-entry table wraps at a 16-byte code distance (PC bits 2-3
        // index it).
        let mut sp = StridePredictor::new(2);
        sp.access(0, 100);
        sp.access(16, 200); // aliases with pc 0
                            // Entry now has last=200; stride got clobbered to 100.
        assert_eq!(sp.predict(0), 300);
    }
}
