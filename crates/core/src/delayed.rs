use std::collections::VecDeque;

use crate::predictor::ValuePredictor;
use crate::storage::StorageCost;

/// Models delayed predictor update (§4.5, Figure 17).
///
/// In a real pipeline the tables are not updated the instant a prediction
/// is made: the actual value is only known once the instruction executes.
/// `DelayedUpdate` defers every inner update until `delay` further
/// predictions have been performed, so a static instruction recurring
/// within that distance predicts from stale history — exactly the paper's
/// model ("the update of the tables is only done after *d* other
/// predictions have been performed").
///
/// A delay of 0 is an immediate update and behaves identically to the bare
/// inner predictor.
///
/// ```
/// use dfcm::{DelayedUpdate, LastValuePredictor, ValuePredictor};
///
/// let mut p = DelayedUpdate::new(LastValuePredictor::new(4), 2);
/// p.access(0, 7);
/// // The update for value 7 has not been applied yet (delay 2), so the
/// // next prediction still sees the cold table.
/// assert_eq!(p.predict(0), 0);
/// p.access(1, 1);
/// p.access(2, 2); // 2 predictions later, the first update lands
/// assert_eq!(p.predict(0), 7);
/// ```
#[derive(Debug, Clone)]
pub struct DelayedUpdate<P> {
    inner: P,
    delay: usize,
    pending: VecDeque<(u64, u64)>,
}

impl<P: ValuePredictor> DelayedUpdate<P> {
    /// Wraps `inner` with an update delay of `delay` predictions.
    pub fn new(inner: P, delay: usize) -> Self {
        DelayedUpdate {
            inner,
            delay,
            pending: VecDeque::with_capacity(delay + 1),
        }
    }

    /// The configured delay in predictions.
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// Applies all pending updates immediately (e.g. at end of trace).
    pub fn flush(&mut self) {
        while let Some((pc, actual)) = self.pending.pop_front() {
            self.inner.update(pc, actual);
        }
    }

    /// Returns the wrapped predictor, dropping any pending updates.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: ValuePredictor> ValuePredictor for DelayedUpdate<P> {
    fn predict(&mut self, pc: u64) -> u64 {
        self.inner.predict(pc)
    }

    fn update(&mut self, pc: u64, actual: u64) {
        self.pending.push_back((pc, actual));
        if self.pending.len() > self.delay {
            let (pc, actual) = self.pending.pop_front().expect("just pushed");
            self.inner.update(pc, actual);
        }
    }

    fn storage(&self) -> StorageCost {
        self.inner.storage()
    }

    fn name(&self) -> String {
        format!("{}@d{}", self.inner.name(), self.delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfcm::DfcmPredictor;
    use crate::lvp::LastValuePredictor;

    #[test]
    fn zero_delay_matches_bare_predictor() {
        let mut bare = LastValuePredictor::new(4);
        let mut delayed = DelayedUpdate::new(LastValuePredictor::new(4), 0);
        for i in 0..50u64 {
            let pc = i % 3;
            let v = i * 7 % 13;
            assert_eq!(bare.access(pc, v), delayed.access(pc, v), "i={i}");
        }
    }

    #[test]
    fn updates_land_after_exactly_delay_predictions() {
        let mut p = DelayedUpdate::new(LastValuePredictor::new(4), 3);
        p.access(0, 99);
        p.access(1, 1);
        p.access(2, 2);
        // Three predictions made since, but the third access only pushed the
        // queue to length 3; the first update applies on the next access.
        assert_eq!(p.predict(0), 0);
        p.access(3, 3);
        assert_eq!(p.predict(0), 99);
    }

    #[test]
    fn stale_history_hurts_tight_recurrence() {
        // The same static instruction recurring within the delay distance
        // must predict from stale state: an LVP on a constant stream is
        // wrong only while the first update is in flight.
        let mut p = DelayedUpdate::new(LastValuePredictor::new(4), 4);
        let outcomes: Vec<bool> = (0..10).map(|_| p.access(0, 5).correct).collect();
        assert!(!outcomes[0]);
        // Until the first update lands (after 4 more predictions), the
        // table still predicts 0.
        assert_eq!(&outcomes[1..5], &[false; 4]);
        assert_eq!(&outcomes[5..], &[true; 5]);
    }

    #[test]
    fn delay_degrades_dfcm_on_interleaved_strides() {
        let run = |delay: usize| {
            let inner = DfcmPredictor::builder()
                .l1_bits(8)
                .l2_bits(12)
                .build()
                .unwrap();
            let mut p = DelayedUpdate::new(inner, delay);
            let mut correct = 0;
            for i in 0..500u64 {
                for pc in 0..4u64 {
                    correct += usize::from(p.access(pc, 100 * pc + 3 * i).correct);
                }
            }
            correct
        };
        let immediate = run(0);
        let delayed = run(16);
        assert!(
            delayed < immediate,
            "delay must not help: immediate={immediate}, delayed={delayed}"
        );
    }

    #[test]
    fn flush_applies_pending() {
        let mut p = DelayedUpdate::new(LastValuePredictor::new(4), 8);
        p.access(0, 42);
        assert_eq!(p.predict(0), 0);
        p.flush();
        assert_eq!(p.predict(0), 42);
    }

    #[test]
    fn into_inner_returns_wrapped() {
        let mut p = DelayedUpdate::new(LastValuePredictor::new(4), 0);
        p.access(0, 9);
        let mut inner = p.into_inner();
        assert_eq!(inner.predict(0), 9);
    }

    #[test]
    fn name_mentions_delay() {
        let p = DelayedUpdate::new(LastValuePredictor::new(4), 32);
        assert!(p.name().ends_with("@d32"));
    }
}
