use crate::error::ConfigError;

/// History hashing function for the level-1 tables of [`FcmPredictor`] and
/// [`DfcmPredictor`].
///
/// Two-level context predictors store a *hashed* history in the level-1
/// table and use it as the level-2 index, so the hash must be computable
/// incrementally: given the previous hashed history and the newest value,
/// produce the new hashed history (§2.3 of the paper).
///
/// [`FcmPredictor`]: crate::FcmPredictor
/// [`DfcmPredictor`]: crate::DfcmPredictor
///
/// ```
/// use dfcm::HashFunction;
///
/// let h = HashFunction::FsR5;
/// let mut hist = 0u64;
/// for v in [3u64, 1, 4, 1, 5] {
///     hist = h.fold_update(hist, v, 12);
/// }
/// assert!(hist < (1 << 12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum HashFunction {
    /// Sazeides' *FS R-5* fold-shift hash, the function used throughout the
    /// paper (§4): each value is XOR-folded into `n` index bits, values are
    /// shifted left by `5·age` positions (age 0 = newest), and all shifted
    /// values are XORed. Incrementally: `h' = ((h << 5) ^ fold(v)) & mask`.
    /// Values older than `ceil(n/5)` shift entirely out of the index, which
    /// is why the paper's order varies with the level-2 size
    /// (order = ⌈n/5⌉).
    FsR5,
    /// The general *FS R-k* family of Sazeides' fold-shift hashes:
    /// `h' = ((h << k) ^ fold(v)) & mask`, giving a history order of
    /// ⌈n/k⌉. Smaller shifts keep more (older) history at the cost of
    /// mixing positions together; `FsShift { shift: 5 }` is identical to
    /// [`HashFunction::FsR5`]. Used by the order-ablation benches.
    FsShift {
        /// Positions each value shifts per age step (1..=16).
        shift: u8,
    },
    /// Order-less XOR folding: `h' = h ^ fold(v)`. All positions carry equal
    /// weight, so permutations of a history collide; included as an ablation
    /// baseline.
    FoldXor,
    /// Concatenation of the low `n/order` bits of each of the last `order`
    /// values — the "simple" hash the paper uses in its Figure 4 worked
    /// example. `order` must divide the index width.
    Concat {
        /// Number of history values concatenated into the index.
        order: u32,
    },
}

impl HashFunction {
    /// XOR-folds a 64-bit value into `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 63.
    #[inline]
    pub fn fold(value: u64, bits: u32) -> u64 {
        assert!(
            bits > 0 && bits < 64,
            "fold width must be in 1..=63, got {bits}"
        );
        let mask = (1u64 << bits) - 1;
        let mut v = value;
        let mut folded = 0u64;
        while v != 0 {
            folded ^= v & mask;
            v >>= bits;
        }
        folded
    }

    /// Incrementally mixes `value` into the hashed history `old`, producing
    /// a new hash of `index_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 63 (via the shift), or —
    /// in debug builds only — if a [`HashFunction::Concat`] order does not
    /// divide `index_bits`. Configurations are rejected up front by
    /// [`HashFunction::validate`] (every predictor builder calls it), so
    /// the per-update check is a `debug_assert!` and the release hot path
    /// stays branch-free.
    #[inline]
    pub fn fold_update(&self, old: u64, value: u64, index_bits: u32) -> u64 {
        let mask = (1u64 << index_bits) - 1;
        match *self {
            HashFunction::FsR5 => ((old << 5) ^ Self::fold(value, index_bits)) & mask,
            HashFunction::FsShift { shift } => {
                ((old << shift) ^ Self::fold(value, index_bits)) & mask
            }
            HashFunction::FoldXor => (old ^ Self::fold(value, index_bits)) & mask,
            HashFunction::Concat { order } => {
                debug_assert!(
                    order > 0 && index_bits.is_multiple_of(order),
                    "concat order {order} must divide index width {index_bits}"
                );
                let chunk = index_bits / order;
                ((old << chunk) | (value & ((1u64 << chunk) - 1))) & mask
            }
        }
    }

    /// The effective history order for an index of `index_bits` bits: how
    /// many most-recent values influence the level-2 index.
    ///
    /// For FS R-5 this is ⌈n/5⌉, reproducing the paper's table
    /// (n = 8 → 2, 12 → 3, 16 → 4, 20 → 4 — the paper caps at 4).
    pub fn order(&self, index_bits: u32) -> u32 {
        match *self {
            HashFunction::FsR5 => index_bits.div_ceil(5).max(1),
            HashFunction::FsShift { shift } => index_bits.div_ceil(u32::from(shift.max(1))).max(1),
            // XOR accumulates all history; by convention report the same
            // depth an FS R-5 hash of this width would have, which is what
            // the aliasing analysis compares against.
            HashFunction::FoldXor => index_bits.div_ceil(5).max(1),
            HashFunction::Concat { order } => order,
        }
    }

    /// Checks that this hash can produce indices of `index_bits` bits.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Hash`] if `index_bits` is outside `1..=63` or
    /// the concatenation order does not divide `index_bits`.
    pub fn validate(&self, index_bits: u32) -> Result<(), ConfigError> {
        if index_bits == 0 || index_bits > 63 {
            return Err(ConfigError::Hash {
                reason: format!("index width {index_bits} must be in 1..=63"),
            });
        }
        if let HashFunction::Concat { order } = *self {
            if order == 0 || !index_bits.is_multiple_of(order) {
                return Err(ConfigError::Hash {
                    reason: format!("concat order {order} must divide index width {index_bits}"),
                });
            }
        }
        if let HashFunction::FsShift { shift } = *self {
            if !(1..=16).contains(&shift) {
                return Err(ConfigError::Hash {
                    reason: format!("fold-shift amount {shift} must be in 1..=16"),
                });
            }
        }
        Ok(())
    }

    /// Short name used in predictor labels.
    pub fn label(&self) -> &'static str {
        match self {
            HashFunction::FsR5 => "fs-r5",
            HashFunction::FsShift { .. } => "fs-rk",
            HashFunction::FoldXor => "fold-xor",
            HashFunction::Concat { .. } => "concat",
        }
    }
}

impl Default for HashFunction {
    /// The paper's FS R-5 hash.
    fn default() -> Self {
        HashFunction::FsR5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_is_within_range() {
        for bits in [1u32, 5, 8, 13, 32, 63] {
            let folded = HashFunction::fold(u64::MAX, bits);
            assert!(folded < (1u64 << bits), "bits={bits}");
        }
    }

    #[test]
    fn fold_of_small_value_is_identity() {
        assert_eq!(HashFunction::fold(0x3f, 8), 0x3f);
        assert_eq!(HashFunction::fold(0, 8), 0);
    }

    #[test]
    fn fold_xors_chunks() {
        // 0xAB in the high byte and 0xCD in the low byte fold to 0xAB ^ 0xCD.
        assert_eq!(HashFunction::fold(0xAB_CD, 8), 0xAB ^ 0xCD);
    }

    #[test]
    fn fs_r5_keeps_index_in_range() {
        let h = HashFunction::FsR5;
        let mut hist = 0u64;
        for v in 0..10_000u64 {
            hist = h.fold_update(hist, v.wrapping_mul(0x9E37_79B9_7F4A_7C15), 14);
            assert!(hist < (1 << 14));
        }
    }

    #[test]
    fn fs_r5_order_matches_paper_table() {
        // Paper: L2 size 2^8 2^10 2^12 2^14 2^16 2^18 2^20
        //        order     2    2    3    3    4    4    4
        let h = HashFunction::FsR5;
        assert_eq!(h.order(8), 2);
        assert_eq!(h.order(10), 2);
        assert_eq!(h.order(12), 3);
        assert_eq!(h.order(14), 3);
        assert_eq!(h.order(16), 4);
        assert_eq!(h.order(18), 4);
        assert_eq!(h.order(20), 4);
    }

    #[test]
    fn fs_r5_old_values_shift_out() {
        // With a 10-bit index, a value mixed in 2 updates ago still affects
        // the index, but after ceil(10/5)=2 further updates it is gone.
        let h = HashFunction::FsR5;
        let a = h.fold_update(0, 111, 10);
        let b = h.fold_update(0, 222, 10);
        assert_ne!(a, b);
        let mut ha = a;
        let mut hb = b;
        for v in [7u64, 9] {
            ha = h.fold_update(ha, v, 10);
            hb = h.fold_update(hb, v, 10);
        }
        assert_eq!(
            ha, hb,
            "values older than the order must not affect the index"
        );
    }

    #[test]
    fn concat_keeps_low_bits() {
        let h = HashFunction::Concat { order: 3 };
        let mut hist = 0u64;
        for v in [1u64, 2, 3] {
            hist = h.fold_update(hist, v, 12);
        }
        // 4 bits per value: 0x1, 0x2, 0x3 concatenated oldest-first.
        assert_eq!(hist, 0x123);
    }

    #[test]
    fn fold_xor_is_order_insensitive() {
        let h = HashFunction::FoldXor;
        let ab = h.fold_update(h.fold_update(0, 5, 8), 9, 8);
        let ba = h.fold_update(h.fold_update(0, 9, 8), 5, 8);
        assert_eq!(ab, ba);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        assert!(HashFunction::FsR5.validate(0).is_err());
        assert!(HashFunction::FsR5.validate(64).is_err());
        assert!(HashFunction::FsR5.validate(12).is_ok());
        assert!(HashFunction::Concat { order: 5 }.validate(12).is_err());
        assert!(HashFunction::Concat { order: 0 }.validate(12).is_err());
        assert!(HashFunction::Concat { order: 4 }.validate(12).is_ok());
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            HashFunction::FsR5.label(),
            HashFunction::FoldXor.label(),
            HashFunction::Concat { order: 2 }.label(),
        ];
        assert_eq!(labels.len(), 3);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[1], labels[2]);
    }
}

#[cfg(test)]
mod fs_family_tests {
    use super::*;

    #[test]
    fn fs_shift_5_matches_fs_r5() {
        let general = HashFunction::FsShift { shift: 5 };
        let mut ha = 0u64;
        let mut hb = 0u64;
        for v in 0..500u64 {
            let x = v.wrapping_mul(0xA24B_AED4_963E_E407);
            ha = HashFunction::FsR5.fold_update(ha, x, 13);
            hb = general.fold_update(hb, x, 13);
            assert_eq!(ha, hb);
        }
        assert_eq!(general.order(13), HashFunction::FsR5.order(13));
    }

    #[test]
    fn order_scales_with_shift() {
        assert_eq!(HashFunction::FsShift { shift: 1 }.order(12), 12);
        assert_eq!(HashFunction::FsShift { shift: 3 }.order(12), 4);
        assert_eq!(HashFunction::FsShift { shift: 6 }.order(12), 2);
        assert_eq!(HashFunction::FsShift { shift: 12 }.order(12), 1);
    }

    #[test]
    fn old_values_shift_out_after_order_steps() {
        let h = HashFunction::FsShift { shift: 4 };
        let order = h.order(12) as usize; // ceil(12/4) = 3
        assert_eq!(order, 3);
        let mut a = h.fold_update(0, 0xAAAA, 12);
        let mut b = h.fold_update(0, 0x5555, 12);
        for v in 0..order as u64 {
            a = h.fold_update(a, v, 12);
            b = h.fold_update(b, v, 12);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn validate_rejects_bad_shift() {
        assert!(HashFunction::FsShift { shift: 0 }.validate(12).is_err());
        assert!(HashFunction::FsShift { shift: 17 }.validate(12).is_err());
        assert!(HashFunction::FsShift { shift: 3 }.validate(12).is_ok());
    }

    #[test]
    fn indices_stay_in_range() {
        let h = HashFunction::FsShift { shift: 2 };
        let mut acc = 0u64;
        for v in 0..1000u64 {
            acc = h.fold_update(acc, v.wrapping_mul(0x9E37_79B9), 11);
            assert!(acc < (1 << 11));
        }
    }
}
