use crate::predictor::{L2Indexed, ValuePredictor};
use crate::stride::StridePredictor;

/// Counts, for each level-2 entry of a two-level predictor, how many
/// accesses were *part of a stride pattern* (Figures 6 and 9 of the paper).
///
/// The paper's indicator: a value is part of a stride pattern if a
/// (large, 64K-entry) stride predictor running alongside predicts it
/// correctly. Each time the analyzed predictor is accessed for such a
/// value, the counter of the level-2 entry the access used is incremented.
/// Sorting the counters in descending order shows how widely stride
/// patterns are smeared across the level-2 table — the FCM scatters them
/// over an entry per pattern element, the DFCM collapses each stride to a
/// single entry.
///
/// ```
/// use dfcm::{DfcmPredictor, StrideOccupancyProfiler, ValuePredictor};
///
/// # fn main() -> Result<(), dfcm::ConfigError> {
/// let dfcm = DfcmPredictor::builder().l1_bits(8).l2_bits(8).build()?;
/// let mut profiler = StrideOccupancyProfiler::new(dfcm, 16);
/// for i in 0..10_000u64 {
///     profiler.access(0x400, 3 * i);
/// }
/// let stats = profiler.stats();
/// // One stride pattern occupies essentially one level-2 entry.
/// assert!(stats.entries_with_at_least(100) <= 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StrideOccupancyProfiler<P> {
    predictor: P,
    detector: StridePredictor,
    counts: Vec<u64>,
    correct: u64,
    total: u64,
}

impl<P: ValuePredictor + L2Indexed> StrideOccupancyProfiler<P> {
    /// Wraps `predictor` with a stride-pattern detector of
    /// `2^detector_bits` entries (the paper uses 2^16).
    pub fn new(predictor: P, detector_bits: u32) -> Self {
        let counts = vec![0; predictor.l2_entries()];
        StrideOccupancyProfiler {
            predictor,
            detector: StridePredictor::new(detector_bits),
            counts,
            correct: 0,
            total: 0,
        }
    }

    /// Runs one trace record through both the detector and the analyzed
    /// predictor, attributing the access to its level-2 entry if the value
    /// was stride-predictable. Returns whether the analyzed predictor was
    /// correct.
    pub fn access(&mut self, pc: u64, actual: u64) -> bool {
        let in_stride = self.detector.access(pc, actual).correct;
        let idx = self.predictor.l2_index(pc);
        if in_stride {
            self.counts[idx] += 1;
        }
        let outcome = self.predictor.access(pc, actual);
        self.total += 1;
        self.correct += u64::from(outcome.correct);
        outcome.correct
    }

    /// The per-entry stride-access counts, unsorted (index = level-2 entry).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Summary statistics over the counters.
    pub fn stats(&self) -> OccupancyStats {
        OccupancyStats::from_counts(&self.counts)
    }

    /// Accuracy of the analyzed predictor over the profiled trace.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Returns the analyzed predictor, dropping the profile.
    pub fn into_inner(self) -> P {
        self.predictor
    }
}

/// Aggregated view of a [`StrideOccupancyProfiler`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyStats {
    sorted_desc: Vec<u64>,
}

impl OccupancyStats {
    /// Builds the stats from raw per-entry counts.
    pub fn from_counts(counts: &[u64]) -> Self {
        let mut sorted_desc = counts.to_vec();
        sorted_desc.sort_unstable_by(|a, b| b.cmp(a));
        OccupancyStats { sorted_desc }
    }

    /// The counts sorted in descending order — the series plotted in
    /// Figures 6 and 9.
    pub fn sorted_desc(&self) -> &[u64] {
        &self.sorted_desc
    }

    /// Number of level-2 entries with at least `n` stride accesses.
    ///
    /// The paper's summary metric: e.g. for `li`, the FCM uses 3801 of
    /// 4096 entries more than 1000 times for strides while the DFCM uses
    /// 582.
    pub fn entries_with_at_least(&self, n: u64) -> usize {
        self.sorted_desc.partition_point(|&c| c >= n)
    }

    /// Total number of stride accesses attributed.
    pub fn total_stride_accesses(&self) -> u64 {
        self.sorted_desc.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfcm::DfcmPredictor;
    use crate::fcm::FcmPredictor;

    fn drive_strides<P: ValuePredictor + L2Indexed>(
        profiler: &mut StrideOccupancyProfiler<P>,
        laps: u64,
        period: u64,
    ) {
        // Several interleaved wrap-around stride patterns, like the paper's
        // norm kernel: i, j, j*8, &m[i][j] analogues.
        for lap in 0..laps {
            for j in 0..period {
                profiler.access(0x100, j); // j
                profiler.access(0x104, 8 * j); // j*8
                profiler.access(0x108, 0x8000 + 800 * lap + 8 * j); // &m[i][j]
                profiler.access(0x10c, u64::from(j < period - 1)); // slt
            }
        }
    }

    #[test]
    fn fcm_scatters_strides_dfcm_collapses_them() {
        let fcm = FcmPredictor::builder()
            .l1_bits(10)
            .l2_bits(12)
            .build()
            .unwrap();
        let mut pf = StrideOccupancyProfiler::new(fcm, 16);
        drive_strides(&mut pf, 50, 100);
        let fcm_spread = pf.stats().entries_with_at_least(50);

        let dfcm = DfcmPredictor::builder()
            .l1_bits(10)
            .l2_bits(12)
            .build()
            .unwrap();
        let mut pd = StrideOccupancyProfiler::new(dfcm, 16);
        drive_strides(&mut pd, 50, 100);
        let dfcm_spread = pd.stats().entries_with_at_least(50);

        assert!(
            dfcm_spread * 4 < fcm_spread,
            "DFCM must use far fewer entries: fcm={fcm_spread}, dfcm={dfcm_spread}"
        );
    }

    #[test]
    fn counts_length_matches_l2() {
        let fcm = FcmPredictor::builder()
            .l1_bits(4)
            .l2_bits(8)
            .build()
            .unwrap();
        let pf = StrideOccupancyProfiler::new(fcm, 8);
        assert_eq!(pf.counts().len(), 256);
    }

    #[test]
    fn non_stride_values_not_attributed() {
        // A pattern the stride detector cannot predict contributes nothing.
        let fcm = FcmPredictor::builder()
            .l1_bits(4)
            .l2_bits(8)
            .build()
            .unwrap();
        let mut pf = StrideOccupancyProfiler::new(fcm, 8);
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            pf.access(0x40, x >> 33);
        }
        assert!(pf.stats().total_stride_accesses() < 50);
    }

    #[test]
    fn stats_sorted_descending() {
        let stats = OccupancyStats::from_counts(&[3, 9, 1, 9, 0]);
        assert_eq!(stats.sorted_desc(), &[9, 9, 3, 1, 0]);
        assert_eq!(stats.entries_with_at_least(9), 2);
        assert_eq!(stats.entries_with_at_least(1), 4);
        assert_eq!(stats.entries_with_at_least(10), 0);
        assert_eq!(stats.total_stride_accesses(), 22);
    }

    #[test]
    fn accuracy_reported() {
        let dfcm = DfcmPredictor::builder()
            .l1_bits(6)
            .l2_bits(10)
            .build()
            .unwrap();
        let mut pf = StrideOccupancyProfiler::new(dfcm, 8);
        for i in 0..1000u64 {
            pf.access(0, 5 * i);
        }
        assert!(pf.accuracy() > 0.99);
        let _inner = pf.into_inner();
    }
}
