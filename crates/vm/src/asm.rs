//! A small two-pass assembler for the mini RISC ISA.
//!
//! Syntax overview (see `programs/` for full kernels):
//!
//! ```text
//! ; comments start with ';' or '#'
//! .data
//! table:  .word 1, 2, 3      ; initialized words
//! buf:    .space 64          ; zeroed words
//! .text
//! main:   li   r1, 10
//!         la   r2, buf       ; r2 = address of buf
//! loop:   lw   r3, 0(r2)     ; offsets are in words
//!         add  r3, r3, r1
//!         sw   r3, 1(r2)
//!         addi r1, r1, -1
//!         bne  r1, r0, loop
//!         halt
//! ```
//!
//! Registers are `r0`–`r31` (aliases: `zero` = r0, `sp` = r30, `ra` =
//! r31). Pseudo-instructions: `la` (load address), `mov rd, rs`, `bgt` and
//! `ble` (operand-swapped `blt`/`bge`), `j`/`jal`/`jr` for calls.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::isa::Inst;

/// First data-memory word address; `la` resolves data labels relative to
/// this base so that low addresses stay free for sentinels.
pub const DATA_BASE: i64 = 0x1000;

/// Upper bound on the assembled data segment, in words. Source text is
/// untrusted (kernels may be generated or fuzzed), and a single
/// `.space 99999999999` must not make the assembler itself allocate
/// unboundedly — real kernels use a few thousand words.
pub const MAX_DATA_WORDS: usize = 1 << 22;

/// An assembled program: instructions, initialized data image and the
/// resolved symbol table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Decoded instructions; execution starts at index 0 (or at `main` if
    /// the label exists).
    pub insts: Vec<Inst>,
    /// Initial contents of data memory, loaded at [`DATA_BASE`].
    pub data: Vec<i64>,
    /// Text labels → instruction index.
    pub text_labels: HashMap<String, usize>,
    /// Data labels → absolute word address.
    pub data_labels: HashMap<String, i64>,
    /// Entry instruction index (the `main` label, or 0).
    pub entry: usize,
}

/// An assembly error, with the 1-based source line it occurred on and an
/// excerpt of that line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
    /// The offending source line, trimmed (empty only if the line number
    /// is out of range for the source, which would be a bug).
    pub snippet: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)?;
        if !self.snippet.is_empty() {
            write!(f, "\n  --> {}", self.snippet)?;
        }
        Ok(())
    }
}

impl Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
        snippet: String::new(),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Text,
    Data,
}

/// Assembles `source` into a [`Program`].
///
/// # Errors
///
/// Returns [`AsmError`] on any syntax error, unknown mnemonic or register,
/// duplicate or undefined label, or malformed directive. The error carries
/// the offending line number and a trimmed excerpt of that source line.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    assemble_inner(source).map_err(|mut e| {
        // Every error site knows its line; the excerpt is attached once
        // here so the sites stay terse.
        if e.snippet.is_empty() {
            e.snippet = source
                .lines()
                .nth(e.line.saturating_sub(1))
                .unwrap_or("")
                .trim()
                .to_owned();
        }
        e
    })
}

fn assemble_inner(source: &str) -> Result<Program, AsmError> {
    // Pass 1: collect label addresses and data image.
    let mut segment = Segment::Text;
    let mut inst_count = 0usize;
    let mut text_labels: HashMap<String, usize> = HashMap::new();
    let mut data_labels: HashMap<String, i64> = HashMap::new();
    let mut data: Vec<i64> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = strip_comment(raw).trim();
        // Peel leading labels (there may be several on one line).
        while let Some(colon) = find_label(text) {
            let label = text[..colon].trim();
            validate_label(label, line)?;
            let dup = match segment {
                Segment::Text => text_labels.insert(label.to_owned(), inst_count).is_some(),
                Segment::Data => data_labels
                    .insert(label.to_owned(), DATA_BASE + data.len() as i64)
                    .is_some(),
            };
            if dup {
                return Err(err(line, format!("duplicate label `{label}`")));
            }
            text = text[colon + 1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        if let Some(directive) = text.strip_prefix('.') {
            let mut parts = directive.split_whitespace();
            match parts.next() {
                Some("text") => segment = Segment::Text,
                Some("data") => segment = Segment::Data,
                Some("word") => {
                    if segment != Segment::Data {
                        return Err(err(line, ".word outside .data"));
                    }
                    let rest = directive["word".len()..].trim();
                    for tok in rest.split(',') {
                        let tok = tok.trim();
                        if tok.is_empty() {
                            continue;
                        }
                        data.push(parse_imm(tok, line)?);
                        if data.len() > MAX_DATA_WORDS {
                            return Err(err(
                                line,
                                format!("data segment exceeds {MAX_DATA_WORDS} words"),
                            ));
                        }
                    }
                }
                Some("space") => {
                    if segment != Segment::Data {
                        return Err(err(line, ".space outside .data"));
                    }
                    let rest = directive["space".len()..].trim();
                    let n = parse_imm(rest, line)?;
                    if n < 0 {
                        return Err(err(line, "negative .space size"));
                    }
                    // Reject before allocating: the size is untrusted.
                    if n as u64 > (MAX_DATA_WORDS - data.len()) as u64 {
                        return Err(err(
                            line,
                            format!("data segment exceeds {MAX_DATA_WORDS} words"),
                        ));
                    }
                    data.extend(std::iter::repeat_n(0, n as usize));
                }
                other => {
                    return Err(err(
                        line,
                        format!("unknown directive `.{}`", other.unwrap_or("")),
                    ))
                }
            }
            continue;
        }
        if segment != Segment::Text {
            return Err(err(line, "instruction outside .text"));
        }
        inst_count += 1;
    }

    // Pass 2: encode instructions.
    let mut insts = Vec::with_capacity(inst_count);
    segment = Segment::Text;
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = strip_comment(raw).trim();
        while let Some(colon) = find_label(text) {
            text = text[colon + 1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        if let Some(directive) = text.strip_prefix('.') {
            match directive.split_whitespace().next() {
                Some("text") => segment = Segment::Text,
                Some("data") => segment = Segment::Data,
                _ => {}
            }
            continue;
        }
        if segment != Segment::Text {
            continue;
        }
        insts.push(encode(text, line, &text_labels, &data_labels)?);
    }

    let entry = text_labels.get("main").copied().unwrap_or(0);
    Ok(Program {
        insts,
        data,
        text_labels,
        data_labels,
        entry,
    })
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Finds the colon terminating a leading label, if the line starts with one.
fn find_label(text: &str) -> Option<usize> {
    let colon = text.find(':')?;
    let head = &text[..colon];
    if !head.is_empty() && head.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        Some(colon)
    } else {
        None
    }
}

fn validate_label(label: &str, line: usize) -> Result<(), AsmError> {
    if label.is_empty() || label.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return Err(err(line, format!("invalid label `{label}`")));
    }
    Ok(())
}

fn parse_reg(tok: &str, line: usize) -> Result<u8, AsmError> {
    let tok = tok.trim();
    match tok {
        "zero" => return Ok(0),
        "sp" => return Ok(30),
        "ra" => return Ok(31),
        _ => {}
    }
    let number = tok
        .strip_prefix('r')
        .or_else(|| tok.strip_prefix('$'))
        .ok_or_else(|| err(line, format!("expected register, got `{tok}`")))?;
    let n: u32 = number
        .parse()
        .map_err(|_| err(line, format!("bad register `{tok}`")))?;
    if n >= 32 {
        return Err(err(line, format!("register `{tok}` out of range")));
    }
    Ok(n as u8)
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let tok = tok.trim();
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        let value = i64::from_str_radix(hex, 16)
            .map_err(|_| err(line, format!("bad immediate `{tok}`")))?;
        return Ok(if neg { value.wrapping_neg() } else { value });
    }
    // Parse with the sign attached so that i64::MIN (whose magnitude does
    // not fit in a positive i64) round-trips.
    tok.parse()
        .map_err(|_| err(line, format!("bad immediate `{tok}`")))
}

fn parse_shamt(tok: &str, line: usize) -> Result<u8, AsmError> {
    let v = parse_imm(tok, line)?;
    if !(0..64).contains(&v) {
        return Err(err(line, format!("shift amount `{tok}` out of range")));
    }
    Ok(v as u8)
}

/// Parses a `offset(base)` memory operand.
fn parse_mem(tok: &str, line: usize) -> Result<(i64, u8), AsmError> {
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected offset(reg), got `{tok}`")))?;
    let close = tok
        .rfind(')')
        .ok_or_else(|| err(line, format!("unclosed memory operand `{tok}`")))?;
    let offset_text = tok[..open].trim();
    let offset = if offset_text.is_empty() {
        0
    } else {
        parse_imm(offset_text, line)?
    };
    let base = parse_reg(&tok[open + 1..close], line)?;
    Ok((offset, base))
}

fn lookup_text(labels: &HashMap<String, usize>, tok: &str, line: usize) -> Result<usize, AsmError> {
    labels
        .get(tok.trim())
        .copied()
        .ok_or_else(|| err(line, format!("undefined label `{}`", tok.trim())))
}

fn encode(
    text: &str,
    line: usize,
    text_labels: &HashMap<String, usize>,
    data_labels: &HashMap<String, i64>,
) -> Result<Inst, AsmError> {
    let (mnemonic, rest) = match text.find(char::is_whitespace) {
        Some(pos) => (&text[..pos], text[pos..].trim()),
        None => (text, ""),
    };
    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let want = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
            ))
        }
    };
    let r3 = |f: fn(u8, u8, u8) -> Inst| -> Result<Inst, AsmError> {
        want(3)?;
        Ok(f(
            parse_reg(ops[0], line)?,
            parse_reg(ops[1], line)?,
            parse_reg(ops[2], line)?,
        ))
    };
    let ri = |f: fn(u8, u8, i64) -> Inst| -> Result<Inst, AsmError> {
        want(3)?;
        Ok(f(
            parse_reg(ops[0], line)?,
            parse_reg(ops[1], line)?,
            parse_imm(ops[2], line)?,
        ))
    };
    let sh = |f: fn(u8, u8, u8) -> Inst| -> Result<Inst, AsmError> {
        want(3)?;
        Ok(f(
            parse_reg(ops[0], line)?,
            parse_reg(ops[1], line)?,
            parse_shamt(ops[2], line)?,
        ))
    };
    let branch = |f: fn(u8, u8, usize) -> Inst, swap: bool| -> Result<Inst, AsmError> {
        want(3)?;
        let a = parse_reg(ops[0], line)?;
        let b = parse_reg(ops[1], line)?;
        let target = lookup_text(text_labels, ops[2], line)?;
        Ok(if swap {
            f(b, a, target)
        } else {
            f(a, b, target)
        })
    };

    match mnemonic {
        "add" => r3(Inst::Add),
        "sub" => r3(Inst::Sub),
        "mul" => r3(Inst::Mul),
        "div" => r3(Inst::Div),
        "rem" => r3(Inst::Rem),
        "and" => r3(Inst::And),
        "or" => r3(Inst::Or),
        "xor" => r3(Inst::Xor),
        "slt" => r3(Inst::Slt),
        "addi" => ri(Inst::Addi),
        "andi" => ri(Inst::Andi),
        "ori" => ri(Inst::Ori),
        "xori" => ri(Inst::Xori),
        "slti" => ri(Inst::Slti),
        "sll" => sh(Inst::Sll),
        "srl" => sh(Inst::Srl),
        "sra" => sh(Inst::Sra),
        "li" => {
            want(2)?;
            Ok(Inst::Li(parse_reg(ops[0], line)?, parse_imm(ops[1], line)?))
        }
        "la" => {
            want(2)?;
            let rd = parse_reg(ops[0], line)?;
            let addr = data_labels
                .get(ops[1])
                .copied()
                .ok_or_else(|| err(line, format!("undefined data label `{}`", ops[1])))?;
            Ok(Inst::Li(rd, addr))
        }
        "mov" => {
            want(2)?;
            Ok(Inst::Addi(
                parse_reg(ops[0], line)?,
                parse_reg(ops[1], line)?,
                0,
            ))
        }
        "lw" => {
            want(2)?;
            let rd = parse_reg(ops[0], line)?;
            let (offset, base) = parse_mem(ops[1], line)?;
            Ok(Inst::Lw(rd, offset, base))
        }
        "sw" => {
            want(2)?;
            let rt = parse_reg(ops[0], line)?;
            let (offset, base) = parse_mem(ops[1], line)?;
            Ok(Inst::Sw(rt, offset, base))
        }
        "beq" => branch(Inst::Beq, false),
        "bne" => branch(Inst::Bne, false),
        "blt" => branch(Inst::Blt, false),
        "bge" => branch(Inst::Bge, false),
        "bgt" => branch(Inst::Blt, true),
        "ble" => branch(Inst::Bge, true),
        "j" => {
            want(1)?;
            Ok(Inst::J(lookup_text(text_labels, ops[0], line)?))
        }
        "jal" => {
            want(1)?;
            Ok(Inst::Jal(lookup_text(text_labels, ops[0], line)?))
        }
        "jr" => {
            want(1)?;
            Ok(Inst::Jr(parse_reg(ops[0], line)?))
        }
        "nop" => {
            want(0)?;
            Ok(Inst::Nop)
        }
        "halt" => {
            want(0)?;
            Ok(Inst::Halt)
        }
        other => Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_basic_program() {
        let p = assemble(
            "
            .text
            main: li r1, 5
                  addi r2, r1, -1
                  add  r3, r1, r2
                  halt
            ",
        )
        .unwrap();
        assert_eq!(
            p.insts,
            vec![
                Inst::Li(1, 5),
                Inst::Addi(2, 1, -1),
                Inst::Add(3, 1, 2),
                Inst::Halt
            ]
        );
        assert_eq!(p.entry, 0);
    }

    #[test]
    fn data_directives_and_la() {
        let p = assemble(
            "
            .data
            a: .word 10, 20, 30
            b: .space 5
            c: .word 0x7f
            .text
            main: la r1, b
                  la r2, c
                  halt
            ",
        )
        .unwrap();
        assert_eq!(p.data, vec![10, 20, 30, 0, 0, 0, 0, 0, 127]);
        assert_eq!(p.insts[0], Inst::Li(1, DATA_BASE + 3));
        assert_eq!(p.insts[1], Inst::Li(2, DATA_BASE + 8));
    }

    #[test]
    fn branches_resolve_labels() {
        let p = assemble(
            "
            .text
            main: li r1, 3
            loop: addi r1, r1, -1
                  bne r1, r0, loop
                  bgt r1, r2, main
                  halt
            ",
        )
        .unwrap();
        assert_eq!(p.insts[2], Inst::Bne(1, 0, 1));
        // bgt r1, r2 == blt r2, r1
        assert_eq!(p.insts[3], Inst::Blt(2, 1, 0));
    }

    #[test]
    fn memory_operands() {
        let p = assemble(
            "
            .text
            main: lw r1, 4(r2)
                  lw r3, (r4)
                  sw r1, -2(r5)
                  halt
            ",
        )
        .unwrap();
        assert_eq!(p.insts[0], Inst::Lw(1, 4, 2));
        assert_eq!(p.insts[1], Inst::Lw(3, 0, 4));
        assert_eq!(p.insts[2], Inst::Sw(1, -2, 5));
    }

    #[test]
    fn register_aliases() {
        let p = assemble(".text\nmain: add sp, ra, zero\nhalt\n").unwrap();
        assert_eq!(p.insts[0], Inst::Add(30, 31, 0));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble(
            "; leading comment
            .text
            main: nop   # trailing comment
                  halt
            ",
        )
        .unwrap();
        assert_eq!(p.insts, vec![Inst::Nop, Inst::Halt]);
    }

    #[test]
    fn entry_defaults_to_zero_without_main() {
        let p = assemble(".text\nstart: halt\n").unwrap();
        assert_eq!(p.entry, 0);
    }

    #[test]
    fn entry_is_main_when_present() {
        let p = assemble(".text\nhelper: nop\nmain: halt\n").unwrap();
        assert_eq!(p.entry, 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble(".text\nmain: frob r1, r2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("frob"));
    }

    #[test]
    fn rejects_bad_register_and_label() {
        assert!(assemble(".text\nmain: add r1, r2, r99\n")
            .unwrap_err()
            .message
            .contains("r99"));
        assert!(assemble(".text\nmain: j nowhere\n")
            .unwrap_err()
            .message
            .contains("nowhere"));
        assert!(assemble(".text\nmain: la r1, nothing\nhalt\n").is_err());
    }

    #[test]
    fn rejects_duplicate_label() {
        let e = assemble(".text\nx: nop\nx: halt\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn rejects_word_outside_data() {
        assert!(assemble(".text\n.word 5\n").is_err());
    }

    #[test]
    fn rejects_wrong_operand_count() {
        let e = assemble(".text\nmain: add r1, r2\n").unwrap_err();
        assert!(e.message.contains("expects 3"));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble(".text\nmain: li r1, 0x10\nli r2, -0x10\nli r3, -7\nhalt\n").unwrap();
        assert_eq!(p.insts[0], Inst::Li(1, 16));
        assert_eq!(p.insts[1], Inst::Li(2, -16));
        assert_eq!(p.insts[2], Inst::Li(3, -7));
    }

    #[test]
    fn errors_carry_source_snippet() {
        // Unknown mnemonic.
        let e = assemble(".text\nmain: nop\n      frob r1\nhalt\n").unwrap_err();
        assert_eq!((e.line, e.snippet.as_str()), (3, "frob r1"));
        assert!(e.message.contains("unknown mnemonic"));
        assert!(e.to_string().contains("-->"));
        // Bad register.
        let e = assemble(".text\nmain: nop\nadd r1, r2, r99\nhalt\n").unwrap_err();
        assert_eq!((e.line, e.snippet.as_str()), (3, "add r1, r2, r99"));
        assert!(e.message.contains("out of range"));
        // Out-of-range immediate (does not fit an i64).
        let e = assemble(".text\nmain: li r1, 99999999999999999999\nhalt\n").unwrap_err();
        assert_eq!(
            (e.line, e.snippet.as_str()),
            (2, "main: li r1, 99999999999999999999")
        );
        assert!(e.message.contains("bad immediate"));
        // Out-of-range shift amount.
        let e = assemble(".text\nmain: sll r1, r2, 64\n").unwrap_err();
        assert_eq!((e.line, e.snippet.as_str()), (2, "main: sll r1, r2, 64"));
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn data_segment_size_capped_before_allocation() {
        let e = assemble(".data\nbig: .space 99999999999\n.text\nmain: halt\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("data segment exceeds"));
        let e = assemble(".data\nbig: .space -1\n.text\nmain: halt\n").unwrap_err();
        assert!(e.message.contains("negative"));
    }

    #[test]
    fn shift_amounts_validated() {
        assert!(assemble(".text\nmain: sll r1, r2, 64\n").is_err());
        let p = assemble(".text\nmain: sll r1, r2, 3\nhalt\n").unwrap();
        assert_eq!(p.insts[0], Inst::Sll(1, 2, 3));
    }
}
