//! The bundled benchmark kernels (assembly sources).
//!
//! Each kernel is a real program whose value trace exhibits the pattern
//! classes the paper studies. `norm` is a faithful integer translation of
//! the paper's Figure 5 function; the others stand in for the SPECint95
//! behaviours described in DESIGN.md:
//!
//! | kernel    | behaviour it contributes |
//! |-----------|--------------------------|
//! | `norm`    | the paper's motivating stride-rich kernel (Figures 5, 6, 9) |
//! | `queens`  | backtracking search (li's 7queens workload) |
//! | `lzw`     | hash-table probing on data-dependent keys (compress) |
//! | `matmul`  | dense nested array loops (ijpeg) |
//! | `hashstr` | string scanning and bucket updates (perl) |
//! | `treeins` | pointer-structure build and traversal (vortex, cc1) |
//! | `sieve`   | many concurrent distinct-stride patterns (§2.4) |
//! | `bubble`  | compare-and-swap loops with drifting branch bias (go) |
//! | `fib`     | deep jal/jr recursion with stack traffic (m88ksim-ish call mix) |
//! | `strsearch` | inner compare loops with early exits (go) |

/// The paper's Figure 5 `norm` kernel (integer variant).
pub const NORM: &str = include_str!("../programs/norm.s");
/// Iterative 8-queens solution counter.
pub const QUEENS: &str = include_str!("../programs/queens.s");
/// Dictionary-coder hash-probing kernel.
pub const LZW: &str = include_str!("../programs/lzw.s");
/// 32×32 integer matrix multiplication.
pub const MATMUL: &str = include_str!("../programs/matmul.s");
/// Word-hashing text scan.
pub const HASHSTR: &str = include_str!("../programs/hashstr.s");
/// Binary-search-tree build and lookup.
pub const TREEINS: &str = include_str!("../programs/treeins.s");
/// Sieve of Eratosthenes up to 10 000.
pub const SIEVE: &str = include_str!("../programs/sieve.s");
/// Bubble sort of 256 values.
pub const BUBBLE: &str = include_str!("../programs/bubble.s");
/// Naive recursive Fibonacci (call-stack-heavy).
pub const FIB: &str = include_str!("../programs/fib.s");
/// Naive substring search over a small alphabet.
pub const STRSEARCH: &str = include_str!("../programs/strsearch.s");

/// All bundled kernels as `(name, source)` pairs, in a stable order.
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![
        ("norm", NORM),
        ("queens", QUEENS),
        ("lzw", LZW),
        ("matmul", MATMUL),
        ("hashstr", HASHSTR),
        ("treeins", TREEINS),
        ("sieve", SIEVE),
        ("bubble", BUBBLE),
        ("fib", FIB),
        ("strsearch", STRSEARCH),
    ]
}

/// Looks up a bundled kernel's source by name.
pub fn by_name(name: &str) -> Option<&'static str> {
    all()
        .into_iter()
        .find(|&(n, _)| n == name)
        .map(|(_, src)| src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::vm::Vm;

    /// Assembles and runs a kernel to completion, returning the machine.
    fn run(name: &str) -> Vm {
        let src = by_name(name).expect("kernel exists");
        let program = assemble(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut vm = Vm::new(program);
        let result = vm.run(50_000_000).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(result.halted, "{name} did not halt");
        vm
    }

    #[test]
    fn every_kernel_assembles() {
        for (name, src) in all() {
            assemble(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn by_name_roundtrip() {
        assert!(by_name("norm").is_some());
        assert!(by_name("nope").is_none());
        assert_eq!(all().len(), 10);
    }

    #[test]
    fn queens_finds_92_solutions() {
        let vm = run("queens");
        assert_eq!(vm.reg(25), 92);
    }

    #[test]
    fn sieve_counts_primes_below_10000() {
        let vm = run("sieve");
        assert_eq!(vm.reg(25), 1229);
    }

    #[test]
    fn treeins_lookups_all_hit() {
        let vm = run("treeins");
        assert_eq!(vm.reg(25), 800);
    }

    #[test]
    fn bubble_sorts_correctly() {
        let vm = run("bubble");
        assert_eq!(vm.reg(25), 1, "verification scan found unsorted elements");
    }

    #[test]
    fn lzw_finds_matches() {
        let vm = run("lzw");
        // The hit count is data-dependent but must be nonzero and below
        // the iteration count.
        let hits = vm.reg(25);
        assert!(hits > 0 && hits < 30_000, "hits = {hits}");
    }

    #[test]
    fn hashstr_produces_hash() {
        let vm = run("hashstr");
        assert!(vm.reg(25) > 0);
    }

    #[test]
    fn matmul_checksum_stable() {
        let a = run("matmul").reg(25);
        let b = run("matmul").reg(25);
        assert_eq!(a, b);
        assert!(a > 0);
    }

    #[test]
    fn norm_normalizes_rows() {
        let vm = run("norm");
        // After two normalization passes every element is in [-1, 1].
        let base = crate::asm::DATA_BASE;
        for i in [0i64, 50, 199] {
            for j in [0i64, 17, 99] {
                let v = vm.mem(base + i * 100 + j).unwrap();
                assert!((-1..=1).contains(&v), "matrix[{i}][{j}] = {v}");
            }
        }
    }

    #[test]
    fn kernels_halt_within_budget_and_emit_plenty() {
        for (name, src) in all() {
            let mut vm = Vm::new(assemble(src).unwrap());
            let result = vm.run(50_000_000).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(result.halted, "{name} exceeded step budget");
            assert!(
                result.trace.len() > 50_000,
                "{name}: only {} records",
                result.trace.len()
            );
        }
    }
}

#[cfg(test)]
mod extended_kernel_tests {
    use super::*;
    use crate::asm::{assemble, DATA_BASE};
    use crate::vm::Vm;

    #[test]
    fn fib_computes_6765() {
        let mut vm = Vm::new(assemble(FIB).unwrap());
        let result = vm.run(50_000_000).unwrap();
        assert!(result.halted);
        assert_eq!(vm.reg(25), 6765);
    }

    #[test]
    fn strsearch_count_matches_host_oracle() {
        let mut vm = Vm::new(assemble(STRSEARCH).unwrap());
        let result = vm.run(50_000_000).unwrap();
        assert!(result.halted);
        // Read back the generated text and recount on the host.
        let text: Vec<i64> = (0..4096).map(|i| vm.mem(DATA_BASE + i).unwrap()).collect();
        let patterns = [[0i64, 1, 0, 2, 1], [1, 1, 0, 3, 2], [2, 0, 0, 1, 3]];
        let mut expected = 0i64;
        for pat in &patterns {
            // The kernel scans start positions 0..=4091 — exactly the
            // 4092 five-wide windows of a 4096-character text.
            for window in text.windows(5) {
                expected += i64::from(window == pat);
            }
        }
        assert!(expected > 0, "degenerate text: no occurrences at all");
        assert_eq!(vm.reg(25), expected);
    }
}
