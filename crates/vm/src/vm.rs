//! The interpreter: executes an assembled [`Program`] and emits a value
//! trace.
//!
//! Following the paper's methodology (§4), a trace record is emitted for
//! every executed instruction that writes an integer register — loads
//! included — while branches, jumps and stores produce nothing. This is
//! exactly the prediction-eligible instruction set of the paper's
//! SimpleScalar `sim-safe` traces.

use std::error::Error;
use std::fmt;

use dfcm_trace::{Trace, TraceRecord, TraceSource};

use crate::asm::{Program, DATA_BASE};
use crate::isa::{Inst, NUM_REGS};

/// Address of instruction index 0 in emitted trace records; instructions
/// are 4 bytes apart, like MIPS.
pub const TEXT_BASE: u64 = 0x0040_0000;

/// Default data-memory size in words.
pub const DEFAULT_MEMORY_WORDS: usize = 1 << 20;

/// A runtime error: the program accessed memory or jumped out of range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// A load or store touched an address outside data memory.
    MemoryOutOfBounds {
        /// Instruction index that faulted.
        pc: usize,
        /// The offending word address.
        addr: i64,
    },
    /// Control transferred outside the instruction array.
    PcOutOfRange {
        /// The invalid target instruction index.
        target: i64,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::MemoryOutOfBounds { pc, addr } => {
                write!(
                    f,
                    "memory access out of bounds at instruction {pc}: address {addr}"
                )
            }
            VmError::PcOutOfRange { target } => {
                write!(f, "jump target {target} outside program")
            }
        }
    }
}

impl Error for VmError {}

/// Why a bounded [`Vm::run`] stopped. Faults are not represented here:
/// a faulting run returns `Err(VmError)` instead of a [`RunResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The program executed `halt` — a clean, complete run.
    Halted,
    /// The step budget ran out before `halt`; the trace is a prefix of
    /// the program's full output, not a completed run.
    StepBudgetExhausted,
}

/// Outcome of a bounded [`Vm::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// The emitted value trace.
    pub trace: Trace,
    /// True if the program executed `halt` (false: the step limit hit).
    pub halted: bool,
    /// Instructions executed during this run call.
    pub steps: u64,
}

impl RunResult {
    /// Distinguishes a clean `halt` from step-budget exhaustion, so
    /// callers never mistake a truncated run for a completed one.
    pub fn stop_reason(&self) -> StopReason {
        if self.halted {
            StopReason::Halted
        } else {
            StopReason::StepBudgetExhausted
        }
    }
}

/// The virtual machine: registers, data memory and a program.
///
/// ```
/// use dfcm_vm::{assemble, Vm};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = assemble(
///     ".text
///      main: li   r1, 0
///            li   r2, 10
///      loop: addi r1, r1, 1
///            bne  r1, r2, loop
///            halt",
/// )?;
/// let mut vm = Vm::new(program);
/// let result = vm.run(10_000)?;
/// assert!(result.halted);
/// assert_eq!(vm.reg(1), 10);
/// // Two `li` records plus ten loop-counter records.
/// assert_eq!(result.trace.len(), 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Vm {
    insts: Vec<Inst>,
    regs: [i64; NUM_REGS],
    mem: Vec<i64>,
    pc: usize,
    halted: bool,
    steps: u64,
    error: Option<VmError>,
}

impl Vm {
    /// Creates a machine with the default data-memory size and the
    /// program's data image loaded at [`DATA_BASE`]. The stack pointer
    /// (`sp` = r30) starts at the top of memory.
    ///
    /// # Panics
    ///
    /// Panics if the program's data image does not fit in memory.
    pub fn new(program: Program) -> Self {
        Self::with_memory(program, DEFAULT_MEMORY_WORDS)
    }

    /// As [`new`](Vm::new) with an explicit memory size in words.
    ///
    /// # Panics
    ///
    /// Panics if the data image does not fit below `words`.
    pub fn with_memory(program: Program, words: usize) -> Self {
        let needed = DATA_BASE as usize + program.data.len();
        assert!(
            needed <= words,
            "data image needs {needed} words, memory has {words}"
        );
        let mut mem = vec![0i64; words];
        mem[DATA_BASE as usize..needed].copy_from_slice(&program.data);
        let mut regs = [0i64; NUM_REGS];
        regs[30] = words as i64 - 1; // sp
        Vm {
            insts: program.insts,
            regs,
            mem,
            pc: program.entry,
            halted: false,
            steps: 0,
            error: None,
        }
    }

    /// Current value of register `r` (0..=31).
    pub fn reg(&self, r: usize) -> i64 {
        self.regs[r]
    }

    /// The word at data address `addr`, if in range.
    pub fn mem(&self, addr: i64) -> Option<i64> {
        usize::try_from(addr)
            .ok()
            .and_then(|a| self.mem.get(a))
            .copied()
    }

    /// True once `halt` has executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Total instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The first runtime error encountered, if any.
    pub fn error(&self) -> Option<&VmError> {
        self.error.as_ref()
    }

    /// The instruction index the machine will execute next.
    pub fn pc_index(&self) -> usize {
        self.pc
    }

    /// The decoded instruction at `index`, if within the program.
    pub fn inst_at(&self, index: usize) -> Option<Inst> {
        self.insts.get(index).copied()
    }

    fn write_reg(&mut self, r: u8, value: i64) {
        if r != 0 {
            self.regs[r as usize] = value;
        }
    }

    fn load(&self, pc: usize, addr: i64) -> Result<i64, VmError> {
        usize::try_from(addr)
            .ok()
            .and_then(|a| self.mem.get(a))
            .copied()
            .ok_or(VmError::MemoryOutOfBounds { pc, addr })
    }

    fn store(&mut self, pc: usize, addr: i64, value: i64) -> Result<(), VmError> {
        let slot = usize::try_from(addr)
            .ok()
            .and_then(|a| self.mem.get_mut(a))
            .ok_or(VmError::MemoryOutOfBounds { pc, addr })?;
        *slot = value;
        Ok(())
    }

    /// Executes one instruction. Returns the emitted trace record, if the
    /// instruction produced a register value.
    ///
    /// # Errors
    ///
    /// Returns [`VmError`] on out-of-bounds memory access or control
    /// transfer; the machine also latches the error (see [`Vm::error`]).
    pub fn step(&mut self) -> Result<Option<TraceRecord>, VmError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let Some(&inst) = self.insts.get(pc) else {
            let e = VmError::PcOutOfRange { target: pc as i64 };
            self.error = Some(e.clone());
            self.halted = true;
            return Err(e);
        };
        self.steps += 1;
        let mut next = pc + 1;
        let mut result: Option<i64> = None;
        // A macro rather than a closure: a closure would hold a borrow of
        // the register file across the mutable memory operations below.
        macro_rules! r {
            ($n:expr) => {
                self.regs[$n as usize]
            };
        }
        match inst {
            Inst::Add(rd, rs, rt) => result = Some(r!(rs).wrapping_add(r!(rt))).filter(|_| rd != 0),
            Inst::Sub(rd, rs, rt) => result = Some(r!(rs).wrapping_sub(r!(rt))).filter(|_| rd != 0),
            Inst::Mul(rd, rs, rt) => result = Some(r!(rs).wrapping_mul(r!(rt))).filter(|_| rd != 0),
            Inst::Div(rd, rs, rt) => {
                let d = r!(rt);
                let v = if d == 0 { 0 } else { r!(rs).wrapping_div(d) };
                result = Some(v).filter(|_| rd != 0);
            }
            Inst::Rem(rd, rs, rt) => {
                let d = r!(rt);
                let v = if d == 0 { 0 } else { r!(rs).wrapping_rem(d) };
                result = Some(v).filter(|_| rd != 0);
            }
            Inst::Addi(rd, rs, imm) => result = Some(r!(rs).wrapping_add(imm)).filter(|_| rd != 0),
            Inst::And(rd, rs, rt) => result = Some(r!(rs) & r!(rt)).filter(|_| rd != 0),
            Inst::Or(rd, rs, rt) => result = Some(r!(rs) | r!(rt)).filter(|_| rd != 0),
            Inst::Xor(rd, rs, rt) => result = Some(r!(rs) ^ r!(rt)).filter(|_| rd != 0),
            Inst::Andi(rd, rs, imm) => result = Some(r!(rs) & imm).filter(|_| rd != 0),
            Inst::Ori(rd, rs, imm) => result = Some(r!(rs) | imm).filter(|_| rd != 0),
            Inst::Xori(rd, rs, imm) => result = Some(r!(rs) ^ imm).filter(|_| rd != 0),
            Inst::Sll(rd, rs, sh) => result = Some(r!(rs) << sh).filter(|_| rd != 0),
            Inst::Srl(rd, rs, sh) => {
                result = Some((r!(rs) as u64 >> sh) as i64).filter(|_| rd != 0)
            }
            Inst::Sra(rd, rs, sh) => result = Some(r!(rs) >> sh).filter(|_| rd != 0),
            Inst::Slt(rd, rs, rt) => result = Some(i64::from(r!(rs) < r!(rt))).filter(|_| rd != 0),
            Inst::Slti(rd, rs, imm) => result = Some(i64::from(r!(rs) < imm)).filter(|_| rd != 0),
            Inst::Li(rd, imm) => result = Some(imm).filter(|_| rd != 0),
            Inst::Lw(rd, offset, rs) => {
                let addr = r!(rs).wrapping_add(offset);
                match self.load(pc, addr) {
                    Ok(v) => result = Some(v).filter(|_| rd != 0),
                    Err(e) => {
                        self.error = Some(e.clone());
                        self.halted = true;
                        return Err(e);
                    }
                }
            }
            Inst::Sw(rt, offset, rs) => {
                let addr = r!(rs).wrapping_add(offset);
                let value = r!(rt);
                if let Err(e) = self.store(pc, addr, value) {
                    self.error = Some(e.clone());
                    self.halted = true;
                    return Err(e);
                }
            }
            Inst::Beq(rs, rt, target) => {
                if r!(rs) == r!(rt) {
                    next = target;
                }
            }
            Inst::Bne(rs, rt, target) => {
                if r!(rs) != r!(rt) {
                    next = target;
                }
            }
            Inst::Blt(rs, rt, target) => {
                if r!(rs) < r!(rt) {
                    next = target;
                }
            }
            Inst::Bge(rs, rt, target) => {
                if r!(rs) >= r!(rt) {
                    next = target;
                }
            }
            Inst::J(target) => next = target,
            Inst::Jal(target) => {
                // The link register is written but jumps are not value-
                // prediction eligible (paper §4), so nothing is emitted.
                self.regs[31] = (pc + 1) as i64;
                next = target;
            }
            Inst::Jr(rs) => {
                let target = r!(rs);
                if target < 0 || target as usize > self.insts.len() {
                    let e = VmError::PcOutOfRange { target };
                    self.error = Some(e.clone());
                    self.halted = true;
                    return Err(e);
                }
                next = target as usize;
            }
            Inst::Nop => {}
            Inst::Halt => {
                self.halted = true;
                return Ok(None);
            }
        }
        self.pc = next;
        match result {
            Some(value) => {
                let (rd, record_value) = (inst.dest().expect("result implies dest"), value);
                self.write_reg(rd, value);
                Ok(Some(TraceRecord::new(
                    TEXT_BASE + 4 * pc as u64,
                    record_value as u64,
                )))
            }
            None => {
                // Writes to r0 are ignored and emit nothing.
                Ok(None)
            }
        }
    }

    /// Runs until `halt` or until `max_steps` instructions have executed,
    /// collecting the emitted trace.
    ///
    /// # Errors
    ///
    /// Returns [`VmError`] if the program faults.
    pub fn run(&mut self, max_steps: u64) -> Result<RunResult, VmError> {
        let start = self.steps;
        let mut trace = Trace::new();
        while !self.halted && self.steps - start < max_steps {
            if let Some(record) = self.step()? {
                trace.push(record);
            }
        }
        Ok(RunResult {
            trace,
            halted: self.halted,
            steps: self.steps - start,
        })
    }

    /// Pulls at most `n` records, propagating VM faults instead of
    /// silently truncating the trace.
    ///
    /// This is the checked counterpart of the [`TraceSource`]
    /// `take_trace` path: `next_record` must map faults to `None` (the
    /// trait has no error channel), which makes a faulting program
    /// indistinguishable from a clean halt unless the caller remembers
    /// to inspect [`Vm::error`]. Engine callers that need to tell the
    /// two apart should use this method.
    ///
    /// # Errors
    ///
    /// Returns the [`VmError`] if the program faults before producing
    /// `n` records (the same error is also latched in [`Vm::error`]).
    pub fn try_take_trace(&mut self, n: usize) -> Result<Trace, VmError> {
        let mut trace = Trace::with_capacity(n);
        while trace.len() < n && !self.halted {
            if let Some(record) = self.step()? {
                trace.push(record);
            }
        }
        Ok(trace)
    }
}

impl TraceSource for Vm {
    /// Steps the machine until the next value-producing instruction.
    ///
    /// Returns `None` at `halt` *or on a fault* — the trait has no error
    /// channel. Callers that must distinguish a faulting program from a
    /// clean halt should use [`Vm::try_take_trace`] or check
    /// [`Vm::error`] after the source is exhausted.
    fn next_record(&mut self) -> Option<TraceRecord> {
        while !self.halted {
            match self.step() {
                Ok(Some(record)) => return Some(record),
                Ok(None) => {}
                Err(_) => return None,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_source(src: &str) -> (Vm, RunResult) {
        let mut vm = Vm::new(assemble(src).expect("assembles"));
        let result = vm.run(1_000_000).expect("runs");
        (vm, result)
    }

    #[test]
    fn arithmetic_and_logic() {
        let (vm, _) = run_source(
            ".text
             main: li r1, 6
                   li r2, 7
                   mul r3, r1, r2
                   sub r4, r3, r1
                   div r5, r3, r2
                   rem r6, r3, r4
                   and r7, r1, r2
                   or  r8, r1, r2
                   xor r9, r1, r2
                   sll r10, r1, 2
                   sra r11, r1, 1
                   halt",
        );
        assert_eq!(vm.reg(3), 42);
        assert_eq!(vm.reg(4), 36);
        assert_eq!(vm.reg(5), 6);
        assert_eq!(vm.reg(6), 42 % 36);
        assert_eq!(vm.reg(7), 6 & 7);
        assert_eq!(vm.reg(8), 6 | 7);
        assert_eq!(vm.reg(9), 6 ^ 7);
        assert_eq!(vm.reg(10), 24);
        assert_eq!(vm.reg(11), 3);
    }

    #[test]
    fn division_by_zero_is_zero() {
        let (vm, _) = run_source(".text\nmain: li r1, 9\ndiv r2, r1, r0\nrem r3, r1, r0\nhalt");
        assert_eq!(vm.reg(2), 0);
        assert_eq!(vm.reg(3), 0);
    }

    #[test]
    fn loads_stores_and_data_image() {
        let (vm, _) = run_source(
            ".data
             v: .word 11, 22, 33
             .text
             main: la r1, v
                   lw r2, 1(r1)
                   addi r2, r2, 100
                   sw r2, 2(r1)
                   lw r3, 2(r1)
                   halt",
        );
        assert_eq!(vm.reg(2), 122);
        assert_eq!(vm.reg(3), 122);
        assert_eq!(vm.mem(DATA_BASE + 2), Some(122));
    }

    #[test]
    fn loop_and_branches() {
        let (vm, _) = run_source(
            ".text
             main: li r1, 0
                   li r2, 0
             loop: addi r2, r2, 5
                   addi r1, r1, 1
                   slti r3, r1, 10
                   bne r3, r0, loop
                   halt",
        );
        assert_eq!(vm.reg(2), 50);
    }

    #[test]
    fn call_and_return() {
        let (vm, _) = run_source(
            ".text
             main: li r1, 4
                   jal double
                   jal double
                   halt
             double: add r1, r1, r1
                   jr ra",
        );
        assert_eq!(vm.reg(1), 16);
    }

    #[test]
    fn trace_excludes_control_and_stores() {
        let (_, result) = run_source(
            ".data
             x: .word 0
             .text
             main: li r1, 1       ; emits
                   la r2, x       ; emits (li)
                   sw r1, 0(r2)   ; no
                   lw r3, 0(r2)   ; emits
                   beq r0, r0, next ; no
             next: halt",
        );
        assert_eq!(result.trace.len(), 3);
    }

    #[test]
    fn writes_to_r0_are_ignored_and_unemitted() {
        let (vm, result) = run_source(".text\nmain: li r0, 9\nadd r0, r0, r0\nhalt");
        assert_eq!(vm.reg(0), 0);
        assert_eq!(result.trace.len(), 0);
    }

    #[test]
    fn trace_pcs_follow_text_layout() {
        let (_, result) = run_source(".text\nmain: li r1, 1\nli r2, 2\nhalt");
        let pcs: Vec<u64> = result.trace.iter().map(|r| r.pc).collect();
        assert_eq!(pcs, vec![TEXT_BASE, TEXT_BASE + 4]);
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let mut vm = Vm::new(assemble(".text\nmain: j main").unwrap());
        let result = vm.run(1000).unwrap();
        assert!(!result.halted);
        assert_eq!(result.steps, 1000);
    }

    #[test]
    fn memory_fault_reported_with_pc() {
        let mut vm = Vm::new(assemble(".text\nmain: li r1, -5\nlw r2, 0(r1)\nhalt").unwrap());
        let e = vm.run(100).unwrap_err();
        assert_eq!(e, VmError::MemoryOutOfBounds { pc: 1, addr: -5 });
        assert!(vm.halted());
        assert_eq!(vm.error(), Some(&e));
    }

    #[test]
    fn bad_jump_reported() {
        let mut vm = Vm::new(assemble(".text\nmain: li r1, -1\njr r1").unwrap());
        assert!(matches!(vm.run(100), Err(VmError::PcOutOfRange { .. })));
    }

    #[test]
    fn trace_source_streams_records() {
        let mut vm = Vm::new(assemble(".text\nmain: li r1, 7\nnop\nli r2, 8\nhalt").unwrap());
        assert_eq!(vm.next_record().map(|r| r.value), Some(7));
        assert_eq!(vm.next_record().map(|r| r.value), Some(8));
        assert_eq!(vm.next_record(), None);
        assert!(vm.halted());
    }

    #[test]
    fn stack_pointer_initialized_to_top() {
        let vm = Vm::with_memory(assemble(".text\nmain: halt").unwrap(), 1 << 14);
        assert_eq!(vm.reg(30), (1 << 14) - 1);
    }

    #[test]
    fn stop_reason_distinguishes_halt_from_budget() {
        let mut vm = Vm::new(assemble(".text\nmain: li r1, 1\nhalt").unwrap());
        assert_eq!(vm.run(100).unwrap().stop_reason(), StopReason::Halted);
        let mut vm = Vm::new(assemble(".text\nmain: j main").unwrap());
        assert_eq!(
            vm.run(50).unwrap().stop_reason(),
            StopReason::StepBudgetExhausted
        );
    }

    #[test]
    fn try_take_trace_surfaces_faults() {
        // take_trace (via TraceSource) silently truncates on a fault;
        // try_take_trace must propagate it.
        let src = ".text\nmain: li r1, 3\nli r2, -5\nlw r3, 0(r2)\nhalt";
        let mut vm = Vm::new(assemble(src).unwrap());
        let silently = vm.take_trace(100);
        assert_eq!(silently.len(), 2, "fault looked like a clean halt");
        let mut vm = Vm::new(assemble(src).unwrap());
        let e = vm.try_take_trace(100).unwrap_err();
        assert_eq!(e, VmError::MemoryOutOfBounds { pc: 2, addr: -5 });
    }

    #[test]
    fn try_take_trace_matches_take_trace_on_clean_runs() {
        let src = ".text\nmain: li r1, 0\nli r2, 12\nloop: addi r1, r1, 1\nbne r1, r2, loop\nhalt";
        let mut a = Vm::new(assemble(src).unwrap());
        let mut b = Vm::new(assemble(src).unwrap());
        assert_eq!(a.try_take_trace(5).unwrap(), b.take_trace(5));
        assert_eq!(a.try_take_trace(1000).unwrap(), b.take_trace(1000));
        assert!(a.halted() && b.halted());
    }
}
