//! The interpreter: executes an assembled [`Program`] and emits a value
//! trace.
//!
//! Following the paper's methodology (§4), a trace record is emitted for
//! every executed instruction that writes an integer register — loads
//! included — while branches, jumps and stores produce nothing. This is
//! exactly the prediction-eligible instruction set of the paper's
//! SimpleScalar `sim-safe` traces.

use std::error::Error;
use std::fmt;
use std::time::Duration;

use dfcm_trace::{Deadline, Trace, TraceRecord, TraceSource};

use crate::asm::{Program, DATA_BASE};
use crate::fast::{self, FastState, Tier, TierConfig, TierStats};
use crate::isa::{Inst, NUM_REGS};

/// Address of instruction index 0 in emitted trace records; instructions
/// are 4 bytes apart, like MIPS.
pub const TEXT_BASE: u64 = 0x0040_0000;

/// Default data-memory size in words.
pub const DEFAULT_MEMORY_WORDS: usize = 1 << 20;

/// How often (in steps) the wall-clock deadline is polled; checking the
/// clock every instruction would dominate the interpreter loop. Shared
/// with the fast tier, which must poll at exactly the same step counts.
pub(crate) const DEADLINE_POLL_MASK: u64 = 0xFFF;

/// Resource budgets for a [`Vm`], for running untrusted or
/// fuzzer-generated kernels: a pathological program degrades to a typed
/// error instead of hanging a worker or exhausting its host.
///
/// The default is the historical behavior: default-sized memory, no
/// instruction budget, no deadline.
///
/// ```
/// use std::time::Duration;
/// use dfcm_vm::{assemble, Vm, VmError, VmLimits};
///
/// let program = assemble(".text\nmain: j main").unwrap();
/// let limits = VmLimits {
///     max_instructions: Some(10_000),
///     ..VmLimits::default()
/// };
/// let mut vm = Vm::with_limits(program, limits).unwrap();
/// // An endless kernel now stops with a typed error instead of hanging.
/// assert!(matches!(
///     vm.try_take_trace(1),
///     Err(VmError::InstructionBudgetExhausted { budget: 10_000 })
/// ));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmLimits {
    /// Data-memory size in words.
    pub memory_words: usize,
    /// Maximum instructions the machine may ever execute (across all
    /// `run`/`step` calls); `None` = unlimited.
    pub max_instructions: Option<u64>,
    /// Wall-clock budget, measured from the first executed instruction
    /// and polled every few thousand steps; `None` = unlimited.
    pub deadline: Option<Duration>,
}

impl Default for VmLimits {
    fn default() -> Self {
        VmLimits {
            memory_words: DEFAULT_MEMORY_WORDS,
            max_instructions: None,
            deadline: None,
        }
    }
}

/// A runtime error: the program accessed memory or jumped out of range,
/// or tripped one of its [`VmLimits`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// A load or store touched an address outside data memory.
    MemoryOutOfBounds {
        /// Instruction index that faulted.
        pc: usize,
        /// The offending word address.
        addr: i64,
    },
    /// Control transferred outside the instruction array.
    PcOutOfRange {
        /// The invalid target instruction index.
        target: i64,
    },
    /// The program's data image does not fit in the configured memory.
    DataImageTooLarge {
        /// Words the image needs (including the [`DATA_BASE`] offset).
        needed: usize,
        /// Words the configured memory provides.
        available: usize,
    },
    /// The machine executed its entire instruction budget without
    /// halting.
    InstructionBudgetExhausted {
        /// The configured budget.
        budget: u64,
    },
    /// The wall-clock deadline passed before the program halted.
    DeadlineExceeded {
        /// The configured deadline.
        deadline: Duration,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::MemoryOutOfBounds { pc, addr } => {
                write!(
                    f,
                    "memory access out of bounds at instruction {pc}: address {addr}"
                )
            }
            VmError::PcOutOfRange { target } => {
                write!(f, "jump target {target} outside program")
            }
            VmError::DataImageTooLarge { needed, available } => {
                write!(f, "data image needs {needed} words, memory has {available}")
            }
            VmError::InstructionBudgetExhausted { budget } => {
                write!(f, "instruction budget of {budget} exhausted")
            }
            VmError::DeadlineExceeded { deadline } => {
                write!(f, "wall-clock deadline of {deadline:?} exceeded")
            }
        }
    }
}

impl Error for VmError {}

/// Why a [`Vm`] stopped executing. Memory and control faults are not
/// represented here: a faulting run returns `Err(VmError)` instead of a
/// [`RunResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The program executed `halt` — a clean, complete run.
    Halted,
    /// The per-call step budget of [`Vm::run`] ran out before `halt`;
    /// the trace is a prefix of the program's full output, not a
    /// completed run. Unlike the [`VmLimits`] guards this is not an
    /// error: the caller chose the bound and the machine can keep going.
    StepBudgetExhausted,
    /// The machine-level [`VmLimits::max_instructions`] budget ran out;
    /// the corresponding call returned
    /// [`VmError::InstructionBudgetExhausted`] and the machine is
    /// permanently stopped.
    InstructionBudgetExhausted {
        /// The configured budget.
        budget: u64,
    },
    /// The [`VmLimits::deadline`] passed; the corresponding call
    /// returned [`VmError::DeadlineExceeded`] and the machine is
    /// permanently stopped.
    DeadlineExceeded {
        /// The configured deadline.
        deadline: Duration,
    },
}

/// Outcome of a bounded [`Vm::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// The emitted value trace.
    pub trace: Trace,
    /// True if the program executed `halt` (false: the step limit hit).
    pub halted: bool,
    /// Instructions executed during this run call.
    pub steps: u64,
}

impl RunResult {
    /// Distinguishes a clean `halt` from step-budget exhaustion, so
    /// callers never mistake a truncated run for a completed one.
    pub fn stop_reason(&self) -> StopReason {
        if self.halted {
            StopReason::Halted
        } else {
            StopReason::StepBudgetExhausted
        }
    }
}

/// The virtual machine: registers, data memory and a program.
///
/// ```
/// use dfcm_vm::{assemble, Vm};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = assemble(
///     ".text
///      main: li   r1, 0
///            li   r2, 10
///      loop: addi r1, r1, 1
///            bne  r1, r2, loop
///            halt",
/// )?;
/// let mut vm = Vm::new(program);
/// let result = vm.run(10_000)?;
/// assert!(result.halted);
/// assert_eq!(vm.reg(1), 10);
/// // Two `li` records plus ten loop-counter records.
/// assert_eq!(result.trace.len(), 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Vm {
    pub(crate) insts: Vec<Inst>,
    pub(crate) regs: [i64; NUM_REGS],
    pub(crate) mem: Vec<i64>,
    pub(crate) pc: usize,
    pub(crate) halted: bool,
    pub(crate) steps: u64,
    pub(crate) error: Option<VmError>,
    pub(crate) limits: VmLimits,
    /// The wall-clock guard, armed (once) when the first instruction
    /// executes. Shared [`Deadline`] helper: the anchor instant is
    /// captured exactly once and every poll measures against it — the
    /// clock is never re-derived mid-run.
    pub(crate) deadline: Option<Deadline>,
    pub(crate) limit_stop: Option<StopReason>,
    /// Fast-tier state ([`Tier::Fast`]); `None` runs the interpreter.
    pub(crate) fast: Option<Box<FastState>>,
}

impl Vm {
    /// Creates a machine with the default data-memory size and the
    /// program's data image loaded at [`DATA_BASE`]. The stack pointer
    /// (`sp` = r30) starts at the top of memory.
    ///
    /// # Panics
    ///
    /// Panics if the program's data image does not fit in memory.
    pub fn new(program: Program) -> Self {
        Self::with_memory(program, DEFAULT_MEMORY_WORDS)
    }

    /// As [`new`](Vm::new) with an explicit memory size in words.
    ///
    /// # Panics
    ///
    /// Panics if the data image does not fit below `words`. For a
    /// non-panicking constructor (untrusted programs) use
    /// [`Vm::with_limits`].
    pub fn with_memory(program: Program, words: usize) -> Self {
        Self::with_limits(
            program,
            VmLimits {
                memory_words: words,
                ..VmLimits::default()
            },
        )
        .unwrap_or_else(|e| panic!("{e}"))
    }

    /// As [`new`](Vm::new) with explicit [`VmLimits`], returning an
    /// error instead of panicking when the program cannot be loaded.
    /// This is the constructor for untrusted or generated programs.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::DataImageTooLarge`] if the program's data
    /// image does not fit in `limits.memory_words`.
    pub fn with_limits(program: Program, limits: VmLimits) -> Result<Self, VmError> {
        let words = limits.memory_words;
        let needed = DATA_BASE as usize + program.data.len();
        if needed > words {
            return Err(VmError::DataImageTooLarge {
                needed,
                available: words,
            });
        }
        let mut mem = vec![0i64; words];
        mem[DATA_BASE as usize..needed].copy_from_slice(&program.data);
        let mut regs = [0i64; NUM_REGS];
        regs[30] = words as i64 - 1; // sp
        Ok(Vm {
            insts: program.insts,
            regs,
            mem,
            pc: program.entry,
            halted: false,
            steps: 0,
            error: None,
            limits,
            deadline: None,
            limit_stop: None,
            fast: None,
        })
    }

    /// As [`with_limits`](Vm::with_limits) with an explicit execution
    /// [`Tier`] and the default [`TierConfig`]. Both tiers are
    /// architecturally identical (bit-identical traces, identical faults
    /// and limit accounting); [`Tier::Fast`] is simply faster on
    /// loop-dominated programs.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::DataImageTooLarge`] if the program's data
    /// image does not fit in `limits.memory_words`.
    pub fn with_tier(program: Program, limits: VmLimits, tier: Tier) -> Result<Self, VmError> {
        Self::with_tier_config(program, limits, tier, TierConfig::default())
    }

    /// As [`with_tier`](Vm::with_tier) with explicit fast-tier tuning.
    /// For [`Tier::Fast`] this runs the construction-time fusion
    /// selection (a bounded interpreter profiling pass over a private
    /// copy of the program) and pre-decodes the instruction stream.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::DataImageTooLarge`] if the program's data
    /// image does not fit in `limits.memory_words`.
    pub fn with_tier_config(
        program: Program,
        limits: VmLimits,
        tier: Tier,
        config: TierConfig,
    ) -> Result<Self, VmError> {
        match tier {
            Tier::Interp => Self::with_limits(program, limits),
            Tier::Fast => {
                let fuse = fast::select_fusions(&program, &limits, &config);
                let state = FastState::new(&program.insts, &fuse, config);
                let mut vm = Self::with_limits(program, limits)?;
                vm.fast = Some(Box::new(state));
                Ok(vm)
            }
        }
    }

    /// The execution tier this machine runs on.
    pub fn tier(&self) -> Tier {
        if self.fast.is_some() {
            Tier::Fast
        } else {
            Tier::Interp
        }
    }

    /// Fast-tier execution counters, if this machine runs [`Tier::Fast`].
    pub fn tier_stats(&self) -> Option<&TierStats> {
        self.fast.as_deref().map(|f| &f.stats)
    }

    /// Current value of register `r` (0..=31).
    pub fn reg(&self, r: usize) -> i64 {
        self.regs[r]
    }

    /// The word at data address `addr`, if in range.
    pub fn mem(&self, addr: i64) -> Option<i64> {
        usize::try_from(addr)
            .ok()
            .and_then(|a| self.mem.get(a))
            .copied()
    }

    /// True once `halt` has executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Total instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The first runtime error encountered, if any.
    pub fn error(&self) -> Option<&VmError> {
        self.error.as_ref()
    }

    /// The configured resource limits.
    pub fn limits(&self) -> &VmLimits {
        &self.limits
    }

    /// The [`VmLimits`] guard that stopped the machine, if one tripped.
    pub fn limit_stop(&self) -> Option<StopReason> {
        self.limit_stop
    }

    /// The instruction index the machine will execute next.
    pub fn pc_index(&self) -> usize {
        self.pc
    }

    /// The decoded instruction at `index`, if within the program.
    pub fn inst_at(&self, index: usize) -> Option<Inst> {
        self.insts.get(index).copied()
    }

    fn write_reg(&mut self, r: u8, value: i64) {
        if r != 0 {
            self.regs[r as usize] = value;
        }
    }

    fn load(&self, pc: usize, addr: i64) -> Result<i64, VmError> {
        usize::try_from(addr)
            .ok()
            .and_then(|a| self.mem.get(a))
            .copied()
            .ok_or(VmError::MemoryOutOfBounds { pc, addr })
    }

    fn store(&mut self, pc: usize, addr: i64, value: i64) -> Result<(), VmError> {
        let slot = usize::try_from(addr)
            .ok()
            .and_then(|a| self.mem.get_mut(a))
            .ok_or(VmError::MemoryOutOfBounds { pc, addr })?;
        *slot = value;
        Ok(())
    }

    /// Stops the machine on a tripped [`VmLimits`] guard: latches the
    /// error and the matching [`StopReason`], and halts further
    /// execution.
    pub(crate) fn trip_limit(&mut self, stop: StopReason, error: VmError) -> VmError {
        self.limit_stop = Some(stop);
        self.error = Some(error.clone());
        self.halted = true;
        error
    }

    /// Executes one instruction. Returns the emitted trace record, if the
    /// instruction produced a register value.
    ///
    /// # Errors
    ///
    /// Returns [`VmError`] on out-of-bounds memory access or control
    /// transfer, or when a [`VmLimits`] guard trips; the machine also
    /// latches the error (see [`Vm::error`]).
    pub fn step(&mut self) -> Result<Option<TraceRecord>, VmError> {
        if self.halted {
            return Ok(None);
        }
        // Manual stepping always uses the interpreter. It interleaves
        // soundly with fast-tier runs (shared architectural state), but
        // breaks the execution contiguity an in-progress loop recording
        // depends on, so any such recording is abandoned.
        if let Some(fast) = &mut self.fast {
            fast.note_interpreter_step();
        }
        if let Some(budget) = self.limits.max_instructions {
            if self.steps >= budget {
                return Err(self.trip_limit(
                    StopReason::InstructionBudgetExhausted { budget },
                    VmError::InstructionBudgetExhausted { budget },
                ));
            }
        }
        if let Some(deadline) = self.limits.deadline {
            let guard = *self
                .deadline
                .get_or_insert_with(|| Deadline::after(deadline));
            if self.steps & DEADLINE_POLL_MASK == 0 && guard.expired() {
                return Err(self.trip_limit(
                    StopReason::DeadlineExceeded { deadline },
                    VmError::DeadlineExceeded { deadline },
                ));
            }
        }
        let pc = self.pc;
        let Some(&inst) = self.insts.get(pc) else {
            let e = VmError::PcOutOfRange { target: pc as i64 };
            self.error = Some(e.clone());
            self.halted = true;
            return Err(e);
        };
        self.steps += 1;
        let mut next = pc + 1;
        let mut result: Option<i64> = None;
        // A macro rather than a closure: a closure would hold a borrow of
        // the register file across the mutable memory operations below.
        macro_rules! r {
            ($n:expr) => {
                self.regs[$n as usize]
            };
        }
        match inst {
            Inst::Add(rd, rs, rt) => result = Some(r!(rs).wrapping_add(r!(rt))).filter(|_| rd != 0),
            Inst::Sub(rd, rs, rt) => result = Some(r!(rs).wrapping_sub(r!(rt))).filter(|_| rd != 0),
            Inst::Mul(rd, rs, rt) => result = Some(r!(rs).wrapping_mul(r!(rt))).filter(|_| rd != 0),
            Inst::Div(rd, rs, rt) => {
                let d = r!(rt);
                let v = if d == 0 { 0 } else { r!(rs).wrapping_div(d) };
                result = Some(v).filter(|_| rd != 0);
            }
            Inst::Rem(rd, rs, rt) => {
                let d = r!(rt);
                let v = if d == 0 { 0 } else { r!(rs).wrapping_rem(d) };
                result = Some(v).filter(|_| rd != 0);
            }
            Inst::Addi(rd, rs, imm) => result = Some(r!(rs).wrapping_add(imm)).filter(|_| rd != 0),
            Inst::And(rd, rs, rt) => result = Some(r!(rs) & r!(rt)).filter(|_| rd != 0),
            Inst::Or(rd, rs, rt) => result = Some(r!(rs) | r!(rt)).filter(|_| rd != 0),
            Inst::Xor(rd, rs, rt) => result = Some(r!(rs) ^ r!(rt)).filter(|_| rd != 0),
            Inst::Andi(rd, rs, imm) => result = Some(r!(rs) & imm).filter(|_| rd != 0),
            Inst::Ori(rd, rs, imm) => result = Some(r!(rs) | imm).filter(|_| rd != 0),
            Inst::Xori(rd, rs, imm) => result = Some(r!(rs) ^ imm).filter(|_| rd != 0),
            Inst::Sll(rd, rs, sh) => result = Some(r!(rs) << sh).filter(|_| rd != 0),
            Inst::Srl(rd, rs, sh) => {
                result = Some((r!(rs) as u64 >> sh) as i64).filter(|_| rd != 0)
            }
            Inst::Sra(rd, rs, sh) => result = Some(r!(rs) >> sh).filter(|_| rd != 0),
            Inst::Slt(rd, rs, rt) => result = Some(i64::from(r!(rs) < r!(rt))).filter(|_| rd != 0),
            Inst::Slti(rd, rs, imm) => result = Some(i64::from(r!(rs) < imm)).filter(|_| rd != 0),
            Inst::Li(rd, imm) => result = Some(imm).filter(|_| rd != 0),
            Inst::Lw(rd, offset, rs) => {
                let addr = r!(rs).wrapping_add(offset);
                match self.load(pc, addr) {
                    Ok(v) => result = Some(v).filter(|_| rd != 0),
                    Err(e) => {
                        self.error = Some(e.clone());
                        self.halted = true;
                        return Err(e);
                    }
                }
            }
            Inst::Sw(rt, offset, rs) => {
                let addr = r!(rs).wrapping_add(offset);
                let value = r!(rt);
                if let Err(e) = self.store(pc, addr, value) {
                    self.error = Some(e.clone());
                    self.halted = true;
                    return Err(e);
                }
            }
            Inst::Beq(rs, rt, target) => {
                if r!(rs) == r!(rt) {
                    next = target;
                }
            }
            Inst::Bne(rs, rt, target) => {
                if r!(rs) != r!(rt) {
                    next = target;
                }
            }
            Inst::Blt(rs, rt, target) => {
                if r!(rs) < r!(rt) {
                    next = target;
                }
            }
            Inst::Bge(rs, rt, target) => {
                if r!(rs) >= r!(rt) {
                    next = target;
                }
            }
            Inst::J(target) => next = target,
            Inst::Jal(target) => {
                // The link register is written but jumps are not value-
                // prediction eligible (paper §4), so nothing is emitted.
                self.regs[31] = (pc + 1) as i64;
                next = target;
            }
            Inst::Jr(rs) => {
                let target = r!(rs);
                if target < 0 || target as usize > self.insts.len() {
                    let e = VmError::PcOutOfRange { target };
                    self.error = Some(e.clone());
                    self.halted = true;
                    return Err(e);
                }
                next = target as usize;
            }
            Inst::Nop => {}
            Inst::Halt => {
                self.halted = true;
                return Ok(None);
            }
        }
        self.pc = next;
        match result {
            Some(value) => {
                let (rd, record_value) = (inst.dest().expect("result implies dest"), value);
                self.write_reg(rd, value);
                Ok(Some(TraceRecord::new(
                    TEXT_BASE + 4 * pc as u64,
                    record_value as u64,
                )))
            }
            None => {
                // Writes to r0 are ignored and emit nothing.
                Ok(None)
            }
        }
    }

    /// Runs until `halt` or until `max_steps` instructions have executed,
    /// collecting the emitted trace.
    ///
    /// # Errors
    ///
    /// Returns [`VmError`] if the program faults.
    pub fn run(&mut self, max_steps: u64) -> Result<RunResult, VmError> {
        let start = self.steps;
        let mut trace = Trace::new();
        if let Some(mut fast) = self.fast.take() {
            let result = self.run_fast(&mut fast, &mut trace, max_steps, usize::MAX);
            self.fast = Some(fast);
            result?;
        } else {
            while !self.halted && self.steps - start < max_steps {
                if let Some(record) = self.step()? {
                    trace.push(record);
                }
            }
        }
        Ok(RunResult {
            trace,
            halted: self.halted,
            steps: self.steps - start,
        })
    }

    /// Pulls at most `n` records, propagating VM faults instead of
    /// silently truncating the trace.
    ///
    /// This is the checked counterpart of the [`TraceSource`]
    /// `take_trace` path: `next_record` must map faults to `None` (the
    /// trait has no error channel), which makes a faulting program
    /// indistinguishable from a clean halt unless the caller remembers
    /// to inspect [`Vm::error`]. Engine callers that need to tell the
    /// two apart should use this method.
    ///
    /// # Errors
    ///
    /// Returns the [`VmError`] if the program faults before producing
    /// `n` records (the same error is also latched in [`Vm::error`]).
    pub fn try_take_trace(&mut self, n: usize) -> Result<Trace, VmError> {
        let mut trace = Trace::with_capacity(n);
        if let Some(mut fast) = self.fast.take() {
            let result = self.run_fast(&mut fast, &mut trace, u64::MAX, n);
            self.fast = Some(fast);
            result?;
        } else {
            while trace.len() < n && !self.halted {
                if let Some(record) = self.step()? {
                    trace.push(record);
                }
            }
        }
        Ok(trace)
    }
}

impl TraceSource for Vm {
    /// Steps the machine until the next value-producing instruction.
    ///
    /// Returns `None` at `halt` *or on a fault* — the trait has no error
    /// channel. Callers that must distinguish a faulting program from a
    /// clean halt should use [`Vm::try_take_trace`] or check
    /// [`Vm::error`] after the source is exhausted.
    fn next_record(&mut self) -> Option<TraceRecord> {
        if let Some(mut fast) = self.fast.take() {
            let mut trace = Trace::with_capacity(1);
            // An error is latched on the machine and surfaces as `None`
            // on the next call — exactly like the interpreter path when a
            // record is produced right before a fault (e.g. by the first
            // component of a fused pair).
            let _ = self.run_fast(&mut fast, &mut trace, u64::MAX, 1);
            self.fast = Some(fast);
            return trace.iter().next().copied();
        }
        while !self.halted {
            match self.step() {
                Ok(Some(record)) => return Some(record),
                Ok(None) => {}
                Err(_) => return None,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_source(src: &str) -> (Vm, RunResult) {
        let mut vm = Vm::new(assemble(src).expect("assembles"));
        let result = vm.run(1_000_000).expect("runs");
        (vm, result)
    }

    #[test]
    fn arithmetic_and_logic() {
        let (vm, _) = run_source(
            ".text
             main: li r1, 6
                   li r2, 7
                   mul r3, r1, r2
                   sub r4, r3, r1
                   div r5, r3, r2
                   rem r6, r3, r4
                   and r7, r1, r2
                   or  r8, r1, r2
                   xor r9, r1, r2
                   sll r10, r1, 2
                   sra r11, r1, 1
                   halt",
        );
        assert_eq!(vm.reg(3), 42);
        assert_eq!(vm.reg(4), 36);
        assert_eq!(vm.reg(5), 6);
        assert_eq!(vm.reg(6), 42 % 36);
        assert_eq!(vm.reg(7), 6 & 7);
        assert_eq!(vm.reg(8), 6 | 7);
        assert_eq!(vm.reg(9), 6 ^ 7);
        assert_eq!(vm.reg(10), 24);
        assert_eq!(vm.reg(11), 3);
    }

    #[test]
    fn division_by_zero_is_zero() {
        let (vm, _) = run_source(".text\nmain: li r1, 9\ndiv r2, r1, r0\nrem r3, r1, r0\nhalt");
        assert_eq!(vm.reg(2), 0);
        assert_eq!(vm.reg(3), 0);
    }

    #[test]
    fn loads_stores_and_data_image() {
        let (vm, _) = run_source(
            ".data
             v: .word 11, 22, 33
             .text
             main: la r1, v
                   lw r2, 1(r1)
                   addi r2, r2, 100
                   sw r2, 2(r1)
                   lw r3, 2(r1)
                   halt",
        );
        assert_eq!(vm.reg(2), 122);
        assert_eq!(vm.reg(3), 122);
        assert_eq!(vm.mem(DATA_BASE + 2), Some(122));
    }

    #[test]
    fn loop_and_branches() {
        let (vm, _) = run_source(
            ".text
             main: li r1, 0
                   li r2, 0
             loop: addi r2, r2, 5
                   addi r1, r1, 1
                   slti r3, r1, 10
                   bne r3, r0, loop
                   halt",
        );
        assert_eq!(vm.reg(2), 50);
    }

    #[test]
    fn call_and_return() {
        let (vm, _) = run_source(
            ".text
             main: li r1, 4
                   jal double
                   jal double
                   halt
             double: add r1, r1, r1
                   jr ra",
        );
        assert_eq!(vm.reg(1), 16);
    }

    #[test]
    fn trace_excludes_control_and_stores() {
        let (_, result) = run_source(
            ".data
             x: .word 0
             .text
             main: li r1, 1       ; emits
                   la r2, x       ; emits (li)
                   sw r1, 0(r2)   ; no
                   lw r3, 0(r2)   ; emits
                   beq r0, r0, next ; no
             next: halt",
        );
        assert_eq!(result.trace.len(), 3);
    }

    #[test]
    fn writes_to_r0_are_ignored_and_unemitted() {
        let (vm, result) = run_source(".text\nmain: li r0, 9\nadd r0, r0, r0\nhalt");
        assert_eq!(vm.reg(0), 0);
        assert_eq!(result.trace.len(), 0);
    }

    #[test]
    fn trace_pcs_follow_text_layout() {
        let (_, result) = run_source(".text\nmain: li r1, 1\nli r2, 2\nhalt");
        let pcs: Vec<u64> = result.trace.iter().map(|r| r.pc).collect();
        assert_eq!(pcs, vec![TEXT_BASE, TEXT_BASE + 4]);
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let mut vm = Vm::new(assemble(".text\nmain: j main").unwrap());
        let result = vm.run(1000).unwrap();
        assert!(!result.halted);
        assert_eq!(result.steps, 1000);
    }

    #[test]
    fn memory_fault_reported_with_pc() {
        let mut vm = Vm::new(assemble(".text\nmain: li r1, -5\nlw r2, 0(r1)\nhalt").unwrap());
        let e = vm.run(100).unwrap_err();
        assert_eq!(e, VmError::MemoryOutOfBounds { pc: 1, addr: -5 });
        assert!(vm.halted());
        assert_eq!(vm.error(), Some(&e));
    }

    #[test]
    fn bad_jump_reported() {
        let mut vm = Vm::new(assemble(".text\nmain: li r1, -1\njr r1").unwrap());
        assert!(matches!(vm.run(100), Err(VmError::PcOutOfRange { .. })));
    }

    #[test]
    fn trace_source_streams_records() {
        let mut vm = Vm::new(assemble(".text\nmain: li r1, 7\nnop\nli r2, 8\nhalt").unwrap());
        assert_eq!(vm.next_record().map(|r| r.value), Some(7));
        assert_eq!(vm.next_record().map(|r| r.value), Some(8));
        assert_eq!(vm.next_record(), None);
        assert!(vm.halted());
    }

    #[test]
    fn stack_pointer_initialized_to_top() {
        let vm = Vm::with_memory(assemble(".text\nmain: halt").unwrap(), 1 << 14);
        assert_eq!(vm.reg(30), (1 << 14) - 1);
    }

    #[test]
    fn stop_reason_distinguishes_halt_from_budget() {
        let mut vm = Vm::new(assemble(".text\nmain: li r1, 1\nhalt").unwrap());
        assert_eq!(vm.run(100).unwrap().stop_reason(), StopReason::Halted);
        let mut vm = Vm::new(assemble(".text\nmain: j main").unwrap());
        assert_eq!(
            vm.run(50).unwrap().stop_reason(),
            StopReason::StepBudgetExhausted
        );
    }

    #[test]
    fn instruction_budget_stops_endless_kernels_with_typed_error() {
        // Without a budget, `try_take_trace` on a non-emitting infinite
        // loop would spin forever; the guard turns it into a typed error.
        let limits = VmLimits {
            max_instructions: Some(5_000),
            ..VmLimits::default()
        };
        let mut vm = Vm::with_limits(assemble(".text\nmain: j main").unwrap(), limits).unwrap();
        let e = vm.try_take_trace(1).unwrap_err();
        assert_eq!(e, VmError::InstructionBudgetExhausted { budget: 5_000 });
        assert_eq!(vm.steps(), 5_000);
        assert_eq!(
            vm.limit_stop(),
            Some(StopReason::InstructionBudgetExhausted { budget: 5_000 })
        );
        assert!(vm.halted());
        assert_eq!(vm.error(), Some(&e));
        // The machine stays stopped: further pulls drain, never spin.
        assert_eq!(vm.next_record(), None);
        assert_eq!(vm.try_take_trace(1).unwrap(), Trace::new());
    }

    #[test]
    fn budget_is_invisible_to_programs_that_halt_in_time() {
        let src = ".text\nmain: li r1, 0\nli r2, 12\nloop: addi r1, r1, 1\nbne r1, r2, loop\nhalt";
        let limits = VmLimits {
            max_instructions: Some(1_000),
            deadline: Some(Duration::from_secs(60)),
            ..VmLimits::default()
        };
        let mut guarded = Vm::with_limits(assemble(src).unwrap(), limits).unwrap();
        let mut plain = Vm::new(assemble(src).unwrap());
        assert_eq!(guarded.run(100_000).unwrap(), plain.run(100_000).unwrap());
        assert!(guarded.halted());
        assert_eq!(guarded.limit_stop(), None);
    }

    #[test]
    fn deadline_stops_endless_kernels() {
        let limits = VmLimits {
            deadline: Some(Duration::ZERO),
            ..VmLimits::default()
        };
        let mut vm = Vm::with_limits(assemble(".text\nmain: j main").unwrap(), limits).unwrap();
        let e = vm.run(u64::MAX).unwrap_err();
        assert_eq!(
            e,
            VmError::DeadlineExceeded {
                deadline: Duration::ZERO
            }
        );
        assert!(matches!(
            vm.limit_stop(),
            Some(StopReason::DeadlineExceeded { .. })
        ));
        assert!(vm.halted());
    }

    #[test]
    fn with_limits_rejects_oversized_data_images() {
        let program = assemble(".data\nv: .space 100\n.text\nmain: halt").unwrap();
        let limits = VmLimits {
            memory_words: 64,
            ..VmLimits::default()
        };
        assert!(matches!(
            Vm::with_limits(program, limits),
            Err(VmError::DataImageTooLarge { available: 64, .. })
        ));
    }

    #[test]
    fn try_take_trace_surfaces_faults() {
        // take_trace (via TraceSource) silently truncates on a fault;
        // try_take_trace must propagate it.
        let src = ".text\nmain: li r1, 3\nli r2, -5\nlw r3, 0(r2)\nhalt";
        let mut vm = Vm::new(assemble(src).unwrap());
        let silently = vm.take_trace(100);
        assert_eq!(silently.len(), 2, "fault looked like a clean halt");
        let mut vm = Vm::new(assemble(src).unwrap());
        let e = vm.try_take_trace(100).unwrap_err();
        assert_eq!(e, VmError::MemoryOutOfBounds { pc: 2, addr: -5 });
    }

    #[test]
    fn try_take_trace_matches_take_trace_on_clean_runs() {
        let src = ".text\nmain: li r1, 0\nli r2, 12\nloop: addi r1, r1, 1\nbne r1, r2, loop\nhalt";
        let mut a = Vm::new(assemble(src).unwrap());
        let mut b = Vm::new(assemble(src).unwrap());
        assert_eq!(a.try_take_trace(5).unwrap(), b.take_trace(5));
        assert_eq!(a.try_take_trace(1000).unwrap(), b.take_trace(1000));
        assert!(a.halted() && b.halted());
    }
}
