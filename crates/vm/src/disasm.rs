//! Disassembler: renders decoded instructions and whole programs back to
//! assembly text that [`assemble`](crate::assemble) accepts.
//!
//! Useful for inspecting assembled kernels, for diffing program
//! transformations, and as a test oracle (disassemble-then-reassemble must
//! reproduce the instruction stream exactly).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::asm::Program;
use crate::isa::Inst;

fn reg(r: u8) -> String {
    format!("r{r}")
}

/// Renders one instruction, with branch/jump targets as `L<index>` labels.
pub fn render_inst(inst: &Inst) -> String {
    match *inst {
        Inst::Add(d, s, t) => format!("add {}, {}, {}", reg(d), reg(s), reg(t)),
        Inst::Sub(d, s, t) => format!("sub {}, {}, {}", reg(d), reg(s), reg(t)),
        Inst::Mul(d, s, t) => format!("mul {}, {}, {}", reg(d), reg(s), reg(t)),
        Inst::Div(d, s, t) => format!("div {}, {}, {}", reg(d), reg(s), reg(t)),
        Inst::Rem(d, s, t) => format!("rem {}, {}, {}", reg(d), reg(s), reg(t)),
        Inst::Addi(d, s, imm) => format!("addi {}, {}, {}", reg(d), reg(s), imm),
        Inst::And(d, s, t) => format!("and {}, {}, {}", reg(d), reg(s), reg(t)),
        Inst::Or(d, s, t) => format!("or {}, {}, {}", reg(d), reg(s), reg(t)),
        Inst::Xor(d, s, t) => format!("xor {}, {}, {}", reg(d), reg(s), reg(t)),
        Inst::Andi(d, s, imm) => format!("andi {}, {}, {}", reg(d), reg(s), imm),
        Inst::Ori(d, s, imm) => format!("ori {}, {}, {}", reg(d), reg(s), imm),
        Inst::Xori(d, s, imm) => format!("xori {}, {}, {}", reg(d), reg(s), imm),
        Inst::Sll(d, s, sh) => format!("sll {}, {}, {}", reg(d), reg(s), sh),
        Inst::Srl(d, s, sh) => format!("srl {}, {}, {}", reg(d), reg(s), sh),
        Inst::Sra(d, s, sh) => format!("sra {}, {}, {}", reg(d), reg(s), sh),
        Inst::Slt(d, s, t) => format!("slt {}, {}, {}", reg(d), reg(s), reg(t)),
        Inst::Slti(d, s, imm) => format!("slti {}, {}, {}", reg(d), reg(s), imm),
        Inst::Li(d, imm) => format!("li {}, {}", reg(d), imm),
        Inst::Lw(d, offset, base) => format!("lw {}, {}({})", reg(d), offset, reg(base)),
        Inst::Sw(t, offset, base) => format!("sw {}, {}({})", reg(t), offset, reg(base)),
        Inst::Beq(s, t, target) => format!("beq {}, {}, L{target}", reg(s), reg(t)),
        Inst::Bne(s, t, target) => format!("bne {}, {}, L{target}", reg(s), reg(t)),
        Inst::Blt(s, t, target) => format!("blt {}, {}, L{target}", reg(s), reg(t)),
        Inst::Bge(s, t, target) => format!("bge {}, {}, L{target}", reg(s), reg(t)),
        Inst::J(target) => format!("j L{target}"),
        Inst::Jal(target) => format!("jal L{target}"),
        Inst::Jr(s) => format!("jr {}", reg(s)),
        Inst::Nop => "nop".to_owned(),
        Inst::Halt => "halt".to_owned(),
    }
}

/// Targets referenced by branches and jumps in an instruction stream.
fn branch_targets(insts: &[Inst]) -> BTreeSet<usize> {
    insts
        .iter()
        .filter_map(|inst| match *inst {
            Inst::Beq(_, _, t)
            | Inst::Bne(_, _, t)
            | Inst::Blt(_, _, t)
            | Inst::Bge(_, _, t)
            | Inst::J(t)
            | Inst::Jal(t) => Some(t),
            _ => None,
        })
        .collect()
}

/// Disassembles a whole program to assembleable text.
///
/// Data is emitted as one `.word` block under the label `data`; branch
/// targets get labels `L<index>`, and the entry instruction is labelled
/// `main`. Symbolic names from the original source are not preserved
/// (the assembler discards them), but reassembling the output yields an
/// identical instruction stream and data image.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    if !program.data.is_empty() {
        out.push_str(".data\n");
        out.push_str("data:");
        for (i, word) in program.data.iter().enumerate() {
            if i % 8 == 0 {
                out.push_str("\n    .word ");
            } else {
                out.push_str(", ");
            }
            let _ = write!(out, "{word}");
        }
        out.push('\n');
    }
    out.push_str(".text\n");
    let targets = branch_targets(&program.insts);
    for (i, inst) in program.insts.iter().enumerate() {
        if i == program.entry {
            out.push_str("main:\n");
        }
        if targets.contains(&i) {
            let _ = writeln!(out, "L{i}:");
        }
        let _ = writeln!(out, "    {}", render_inst(inst));
    }
    // A trailing label may point one past the last instruction.
    if targets.contains(&program.insts.len()) {
        let _ = writeln!(out, "L{}:", program.insts.len());
        out.push_str("    halt\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::programs;

    #[test]
    fn renders_each_form() {
        assert_eq!(render_inst(&Inst::Add(1, 2, 3)), "add r1, r2, r3");
        assert_eq!(render_inst(&Inst::Addi(1, 2, -5)), "addi r1, r2, -5");
        assert_eq!(render_inst(&Inst::Lw(4, 2, 5)), "lw r4, 2(r5)");
        assert_eq!(render_inst(&Inst::Sw(4, -1, 5)), "sw r4, -1(r5)");
        assert_eq!(render_inst(&Inst::Beq(1, 0, 7)), "beq r1, r0, L7");
        assert_eq!(render_inst(&Inst::Jr(31)), "jr r31");
        assert_eq!(render_inst(&Inst::Halt), "halt");
    }

    #[test]
    fn every_kernel_roundtrips() {
        for (name, src) in programs::all() {
            let original = assemble(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let text = disassemble(&original);
            let reassembled =
                assemble(&text).unwrap_or_else(|e| panic!("{name} roundtrip: {e}\n{text}"));
            assert_eq!(
                original.insts, reassembled.insts,
                "{name}: instruction mismatch"
            );
            assert_eq!(original.data, reassembled.data, "{name}: data mismatch");
            assert_eq!(original.entry, reassembled.entry, "{name}: entry mismatch");
        }
    }

    #[test]
    fn roundtripped_kernel_still_runs_correctly() {
        use crate::vm::Vm;
        let original = assemble(programs::QUEENS).unwrap();
        let text = disassemble(&original);
        let mut vm = Vm::new(assemble(&text).unwrap());
        vm.run(50_000_000).unwrap();
        assert_eq!(vm.reg(25), 92, "queens must still find 92 solutions");
    }

    #[test]
    fn branch_targets_become_labels() {
        let p = assemble(".text\nmain: li r1, 3\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt\n")
            .unwrap();
        let text = disassemble(&p);
        assert!(text.contains("L1:"), "{text}");
        assert!(text.contains("bne r1, r0, L1"), "{text}");
    }

    #[test]
    fn data_image_emitted() {
        let p = assemble(".data\nx: .word 1, 2, 3\n.text\nmain: la r1, x\nhalt\n").unwrap();
        let text = disassemble(&p);
        assert!(text.contains(".word 1, 2, 3"), "{text}");
        // `la` was lowered to `li` with the absolute address.
        assert!(text.contains("li r1, 4096"), "{text}");
    }
}
