//! The fast execution tier: dense pre-decode, superinstruction fusion and
//! loop-trace replay.
//!
//! The interpreter in this crate fetches and decodes one [`Inst`] per step
//! and re-checks every resource limit on every instruction. That is the
//! always-correct baseline, but paper-scale Tier-A traces need hundreds of
//! millions of instructions per kernel. This module adds a tier that
//! executes the *same* architectural semantics from a denser
//! representation:
//!
//! 1. **Pre-decode** — the program is lowered once into a flat array of
//!    [`FastOp`]s: branch targets resolved, `r0`-destination writes
//!    lowered to no-ops, one slot per original instruction.
//! 2. **Superinstruction fusion** — hot adjacent pairs (compare+branch,
//!    load+add, add+store; see [`classify_pair`]) are fused into single
//!    ops, selected by a bounded interpreter profiling pass that counts
//!    dynamic adjacent-pair executions (the same histogram
//!    [`crate::profile::run_profiled`] reports, kept dense here so the
//!    pass costs plain-interpreter time). A fused
//!    op lives in the *first* slot of its pair while the second slot
//!    keeps its standalone op, so a jump into the middle of a pair — or a
//!    limit boundary landing between the two components — executes
//!    exactly like the interpreter.
//! 3. **Loop-trace replay** — taken backward branches are counted per
//!    target; a hot loop head triggers recording of one full cycle as a
//!    straight-line body with a guard at every control decision. Replay
//!    then runs the body without per-step dispatch, pre-checking each
//!    iteration against the instruction budget, the record cap and the
//!    deadline poll schedule so every limit trips on exactly the same
//!    instruction as the interpreter would; a failed guard exits to the
//!    dispatch loop with the branch's actual target.
//!
//! The tier is differentially verified (`tests/tier_equiv.rs`): over the
//! whole kernel suite and under proptest-generated programs it must emit
//! bit-identical value traces and stop for identical reasons.

use std::fmt;
use std::str::FromStr;

use dfcm_trace::{Deadline, Trace, TraceRecord};

use crate::asm::Program;
use crate::isa::{Inst, Reg};
use crate::vm::{StopReason, Vm, VmError, VmLimits, DEADLINE_POLL_MASK, TEXT_BASE};

/// Which execution engine a [`Vm`] uses. Both tiers are architecturally
/// identical: same registers, memory, emitted trace records, faults and
/// [`VmLimits`] accounting — the fast tier is only allowed to be faster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tier {
    /// The per-step decoding interpreter — the always-correct baseline.
    Interp,
    /// Pre-decoded ops with superinstruction fusion and loop-trace
    /// replay. The recommended default for trace generation.
    #[default]
    Fast,
}

impl Tier {
    /// The CLI name of this tier (`"interp"` / `"fast"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Interp => "interp",
            Tier::Fast => "fast",
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Tier {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interp" | "interpreter" => Ok(Tier::Interp),
            "fast" => Ok(Tier::Fast),
            other => Err(format!("unknown VM tier '{other}' (expected fast|interp)")),
        }
    }
}

/// Tuning knobs for the fast tier. The defaults are calibrated for the
/// bundled kernels; every setting only trades speed — architectural
/// behaviour is identical at any configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierConfig {
    /// Interpreter steps of the construction-time profiling pass that
    /// selects fusion sites. `0` selects *statically*: every adjacent
    /// pair matching a fusion pattern is fused without profiling.
    pub profile_steps: u64,
    /// Minimum dynamic executions of an adjacent pair (within the
    /// profiling window) before it is fused.
    pub fusion_min_count: u64,
    /// Taken backward branches to one loop head before a trace recording
    /// starts.
    pub hot_threshold: u32,
    /// Maximum recorded body length (in ops); longer cycles abort the
    /// recording and blacklist the head.
    pub max_trace_len: usize,
    /// Enables superinstruction fusion.
    pub fusion: bool,
    /// Enables loop-trace recording and replay.
    pub replay: bool,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            // 20k steps reach deep into every bundled kernel's hot loop
            // while keeping construction ~ a quarter-millisecond; hot
            // pairs that matter re-execute thousands of times well before
            // this window closes.
            profile_steps: 20_000,
            fusion_min_count: 128,
            hot_threshold: 64,
            max_trace_len: 1024,
            fusion: true,
            replay: true,
        }
    }
}

/// Execution counters of the fast tier, for benchmarks and observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Instructions executed under the fast tier (all modes, replay
    /// included).
    pub instructions: u64,
    /// Static fused superinstruction slots in the pre-decoded program.
    pub fusion_sites: u64,
    /// Fused superinstructions executed whole (each covers two original
    /// instructions).
    pub fused_executed: u64,
    /// Loop-trace recordings started.
    pub recordings_started: u64,
    /// Recordings that completed into a replayable loop trace.
    pub traces_recorded: u64,
    /// Recordings abandoned (unstable or oversized cycle, discontinuous
    /// execution, or a limit boundary splitting a fused pair).
    pub record_aborts: u64,
    /// Complete loop-body iterations executed by replay.
    pub replay_iterations: u64,
    /// Instructions executed inside replay.
    pub replay_instructions: u64,
    /// Replays exited because a guard observed a different control
    /// decision than the recording.
    pub guard_failures: u64,
    /// Replays exited on a limit or deadline-poll boundary (not a guard
    /// failure).
    pub replay_aborts: u64,
}

/// A fusion pattern recognized by [`classify_pair`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedKind {
    /// `slt`/`slti` followed by a `beq`/`bne` testing its result against
    /// `r0` — the dominant loop-control idiom of the kernel suite.
    CompareBranch,
    /// `lw` followed by `add`/`addi` — the load-combine idiom of
    /// reduction loops.
    LoadAdd,
    /// `add`/`addi` followed by `sw` — the compute-store idiom of update
    /// loops.
    AddStore,
}

impl FusedKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FusedKind::CompareBranch => "compare+branch",
            FusedKind::LoadAdd => "load+add",
            FusedKind::AddStore => "add+store",
        }
    }
}

/// Classifies an adjacent instruction pair as a fusible superinstruction,
/// if it matches one of the supported patterns. Pairs whose fused form
/// could not reproduce the interpreter's exact trace (e.g. `r0`
/// destinations, a branch comparing anything but the compare result
/// against `r0`) are rejected.
pub fn classify_pair(a: Inst, b: Inst) -> Option<FusedKind> {
    fn tests_result(rd: Reg, x: Reg, y: Reg) -> bool {
        rd != 0 && ((x == rd && y == 0) || (x == 0 && y == rd))
    }
    match (a, b) {
        (Inst::Slt(rd, _, _) | Inst::Slti(rd, _, _), Inst::Beq(x, y, _) | Inst::Bne(x, y, _))
            if tests_result(rd, x, y) =>
        {
            Some(FusedKind::CompareBranch)
        }
        (Inst::Lw(rd1, _, _), Inst::Add(rd2, _, _) | Inst::Addi(rd2, _, _))
            if rd1 != 0 && rd2 != 0 =>
        {
            Some(FusedKind::LoadAdd)
        }
        (Inst::Add(rd, _, _) | Inst::Addi(rd, _, _), Inst::Sw(_, _, _)) if rd != 0 => {
            Some(FusedKind::AddStore)
        }
        _ => None,
    }
}

/// One pre-decoded operation. Register-writing ops with destination `r0`
/// never appear (lowered to `Nop`/`LwZero` at pre-decode), so execution
/// writes and emits unconditionally. Fused variants execute two original
/// instructions; their second slot retains the standalone op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FastOp {
    Add {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Sub {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Mul {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Div {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Rem {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    And {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Or {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Xor {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Slt {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Addi {
        rd: Reg,
        rs: Reg,
        imm: i64,
    },
    Andi {
        rd: Reg,
        rs: Reg,
        imm: i64,
    },
    Ori {
        rd: Reg,
        rs: Reg,
        imm: i64,
    },
    Xori {
        rd: Reg,
        rs: Reg,
        imm: i64,
    },
    Slti {
        rd: Reg,
        rs: Reg,
        imm: i64,
    },
    Sll {
        rd: Reg,
        rs: Reg,
        sh: u8,
    },
    Srl {
        rd: Reg,
        rs: Reg,
        sh: u8,
    },
    Sra {
        rd: Reg,
        rs: Reg,
        sh: u8,
    },
    Li {
        rd: Reg,
        imm: i64,
    },
    Lw {
        rd: Reg,
        rs: Reg,
        off: i64,
    },
    /// `lw` with destination `r0`: performs the access (faults included),
    /// discards the value, emits nothing.
    LwZero {
        rs: Reg,
        off: i64,
    },
    Sw {
        rt: Reg,
        rs: Reg,
        off: i64,
    },
    Beq {
        rs: Reg,
        rt: Reg,
        t: usize,
    },
    Bne {
        rs: Reg,
        rt: Reg,
        t: usize,
    },
    Blt {
        rs: Reg,
        rt: Reg,
        t: usize,
    },
    Bge {
        rs: Reg,
        rt: Reg,
        t: usize,
    },
    J {
        t: usize,
    },
    Jal {
        t: usize,
    },
    Jr {
        rs: Reg,
    },
    Nop,
    Halt,
    // Fused superinstructions. Naming: first component + second component.
    SltBeq {
        rd: Reg,
        rs: Reg,
        rt: Reg,
        t: usize,
    },
    SltBne {
        rd: Reg,
        rs: Reg,
        rt: Reg,
        t: usize,
    },
    SltiBeq {
        rd: Reg,
        rs: Reg,
        imm: i64,
        t: usize,
    },
    SltiBne {
        rd: Reg,
        rs: Reg,
        imm: i64,
        t: usize,
    },
    LwAdd {
        rd1: Reg,
        rs1: Reg,
        off: i64,
        rd2: Reg,
        ra: Reg,
        rb: Reg,
    },
    LwAddi {
        rd1: Reg,
        rs1: Reg,
        off: i64,
        rd2: Reg,
        ra: Reg,
        imm: i64,
    },
    AddSw {
        rd: Reg,
        ra: Reg,
        rb: Reg,
        rt: Reg,
        rs: Reg,
        off: i64,
    },
    AddiSw {
        rd: Reg,
        ra: Reg,
        imm: i64,
        rt: Reg,
        rs: Reg,
        off: i64,
    },
}

/// Original instructions covered by one executed op.
fn steps_of(op: FastOp) -> u64 {
    match op {
        FastOp::SltBeq { .. }
        | FastOp::SltBne { .. }
        | FastOp::SltiBeq { .. }
        | FastOp::SltiBne { .. }
        | FastOp::LwAdd { .. }
        | FastOp::LwAddi { .. }
        | FastOp::AddSw { .. }
        | FastOp::AddiSw { .. } => 2,
        _ => 1,
    }
}

/// Trace records one executed op emits (assuming it completes whole).
fn emits_of(op: FastOp) -> usize {
    match op {
        FastOp::LwZero { .. }
        | FastOp::Sw { .. }
        | FastOp::Beq { .. }
        | FastOp::Bne { .. }
        | FastOp::Blt { .. }
        | FastOp::Bge { .. }
        | FastOp::J { .. }
        | FastOp::Jal { .. }
        | FastOp::Jr { .. }
        | FastOp::Nop
        | FastOp::Halt => 0,
        FastOp::LwAdd { .. } | FastOp::LwAddi { .. } => 2,
        _ => 1,
    }
}

/// True for ops whose taken transfer can close a loop (conditional
/// branches, fused compare+branch, and `j`). `jal`/`jr` are call/return
/// control and never treated as loop back-edges.
fn is_loop_edge(op: FastOp) -> bool {
    matches!(
        op,
        FastOp::Beq { .. }
            | FastOp::Bne { .. }
            | FastOp::Blt { .. }
            | FastOp::Bge { .. }
            | FastOp::J { .. }
            | FastOp::SltBeq { .. }
            | FastOp::SltBne { .. }
            | FastOp::SltiBeq { .. }
            | FastOp::SltiBne { .. }
    )
}

/// Lowers one instruction to its standalone dense form.
fn lower(inst: Inst) -> FastOp {
    match inst {
        Inst::Add(0, ..)
        | Inst::Sub(0, ..)
        | Inst::Mul(0, ..)
        | Inst::Div(0, ..)
        | Inst::Rem(0, ..)
        | Inst::Addi(0, ..)
        | Inst::And(0, ..)
        | Inst::Or(0, ..)
        | Inst::Xor(0, ..)
        | Inst::Andi(0, ..)
        | Inst::Ori(0, ..)
        | Inst::Xori(0, ..)
        | Inst::Sll(0, ..)
        | Inst::Srl(0, ..)
        | Inst::Sra(0, ..)
        | Inst::Slt(0, ..)
        | Inst::Slti(0, ..)
        | Inst::Li(0, ..) => FastOp::Nop,
        Inst::Lw(0, off, rs) => FastOp::LwZero { rs, off },
        Inst::Add(rd, rs, rt) => FastOp::Add { rd, rs, rt },
        Inst::Sub(rd, rs, rt) => FastOp::Sub { rd, rs, rt },
        Inst::Mul(rd, rs, rt) => FastOp::Mul { rd, rs, rt },
        Inst::Div(rd, rs, rt) => FastOp::Div { rd, rs, rt },
        Inst::Rem(rd, rs, rt) => FastOp::Rem { rd, rs, rt },
        Inst::Addi(rd, rs, imm) => FastOp::Addi { rd, rs, imm },
        Inst::And(rd, rs, rt) => FastOp::And { rd, rs, rt },
        Inst::Or(rd, rs, rt) => FastOp::Or { rd, rs, rt },
        Inst::Xor(rd, rs, rt) => FastOp::Xor { rd, rs, rt },
        Inst::Andi(rd, rs, imm) => FastOp::Andi { rd, rs, imm },
        Inst::Ori(rd, rs, imm) => FastOp::Ori { rd, rs, imm },
        Inst::Xori(rd, rs, imm) => FastOp::Xori { rd, rs, imm },
        Inst::Sll(rd, rs, sh) => FastOp::Sll { rd, rs, sh },
        Inst::Srl(rd, rs, sh) => FastOp::Srl { rd, rs, sh },
        Inst::Sra(rd, rs, sh) => FastOp::Sra { rd, rs, sh },
        Inst::Slt(rd, rs, rt) => FastOp::Slt { rd, rs, rt },
        Inst::Slti(rd, rs, imm) => FastOp::Slti { rd, rs, imm },
        Inst::Li(rd, imm) => FastOp::Li { rd, imm },
        Inst::Lw(rd, off, rs) => FastOp::Lw { rd, rs, off },
        Inst::Sw(rt, off, rs) => FastOp::Sw { rt, rs, off },
        Inst::Beq(rs, rt, t) => FastOp::Beq { rs, rt, t },
        Inst::Bne(rs, rt, t) => FastOp::Bne { rs, rt, t },
        Inst::Blt(rs, rt, t) => FastOp::Blt { rs, rt, t },
        Inst::Bge(rs, rt, t) => FastOp::Bge { rs, rt, t },
        Inst::J(t) => FastOp::J { t },
        Inst::Jal(t) => FastOp::Jal { t },
        Inst::Jr(rs) => FastOp::Jr { rs },
        Inst::Nop => FastOp::Nop,
        Inst::Halt => FastOp::Halt,
    }
}

/// Builds the fused form of a classified pair, or `None` if the pair does
/// not match a fusion pattern after all.
fn fuse_pair(a: Inst, b: Inst) -> Option<FastOp> {
    classify_pair(a, b)?;
    Some(match (a, b) {
        (Inst::Slt(rd, rs, rt), Inst::Beq(..)) => FastOp::SltBeq {
            rd,
            rs,
            rt,
            t: branch_target(b),
        },
        (Inst::Slt(rd, rs, rt), Inst::Bne(..)) => FastOp::SltBne {
            rd,
            rs,
            rt,
            t: branch_target(b),
        },
        (Inst::Slti(rd, rs, imm), Inst::Beq(..)) => FastOp::SltiBeq {
            rd,
            rs,
            imm,
            t: branch_target(b),
        },
        (Inst::Slti(rd, rs, imm), Inst::Bne(..)) => FastOp::SltiBne {
            rd,
            rs,
            imm,
            t: branch_target(b),
        },
        (Inst::Lw(rd1, off, rs1), Inst::Add(rd2, ra, rb)) => FastOp::LwAdd {
            rd1,
            rs1,
            off,
            rd2,
            ra,
            rb,
        },
        (Inst::Lw(rd1, off, rs1), Inst::Addi(rd2, ra, imm)) => FastOp::LwAddi {
            rd1,
            rs1,
            off,
            rd2,
            ra,
            imm,
        },
        (Inst::Add(rd, ra, rb), Inst::Sw(rt, off, rs)) => FastOp::AddSw {
            rd,
            ra,
            rb,
            rt,
            rs,
            off,
        },
        (Inst::Addi(rd, ra, imm), Inst::Sw(rt, off, rs)) => FastOp::AddiSw {
            rd,
            ra,
            imm,
            rt,
            rs,
            off,
        },
        _ => return None,
    })
}

fn branch_target(inst: Inst) -> usize {
    match inst {
        Inst::Beq(_, _, t) | Inst::Bne(_, _, t) | Inst::Blt(_, _, t) | Inst::Bge(_, _, t) => t,
        _ => unreachable!("branch_target on non-branch"),
    }
}

/// Lowers a program to its dense form, fusing the pairs whose first slot
/// is flagged in `fuse`.
fn predecode(insts: &[Inst], fuse: &[bool]) -> Vec<FastOp> {
    (0..insts.len())
        .map(|i| {
            if fuse.get(i).copied().unwrap_or(false) && i + 1 < insts.len() {
                if let Some(op) = fuse_pair(insts[i], insts[i + 1]) {
                    return op;
                }
            }
            lower(insts[i])
        })
        .collect()
}

/// Selects fusion sites for `program`: with `profile_steps > 0`, runs a
/// bounded interpreter profiling pass and fuses the adjacent pairs that
/// both match a pattern and executed at least `fusion_min_count` times;
/// with `profile_steps == 0`, fuses every matching pair statically.
pub(crate) fn select_fusions(
    program: &Program,
    limits: &VmLimits,
    config: &TierConfig,
) -> Vec<bool> {
    let n = program.insts.len();
    let mut fuse = vec![false; n];
    if !config.fusion || n < 2 {
        return fuse;
    }
    if config.profile_steps == 0 {
        for (i, f) in fuse.iter_mut().enumerate().take(n - 1) {
            *f = classify_pair(program.insts[i], program.insts[i + 1]).is_some();
        }
        return fuse;
    }
    // The profiling run is bounded by profile_steps, so the interpreter
    // limits are dropped; a program that faults mid-profile simply gets
    // no fusion (the real run will surface the fault identically).
    let profile_limits = VmLimits {
        memory_words: limits.memory_words,
        max_instructions: None,
        deadline: None,
    };
    let Ok(mut vm) = Vm::with_limits(program.clone(), profile_limits) else {
        return fuse;
    };
    // Dense adjacent-pair counts, not [`run_profiled`]: the full profile
    // pays several hash-map updates per step, which at construction time
    // would dwarf the fusion win it exists to enable. `pair_counts[i]`
    // is the dynamic count of instruction `i + 1` executing immediately
    // after instruction `i`.
    let mut pair_counts = vec![0u64; n];
    let mut steps = 0u64;
    let mut prev = usize::MAX - 1;
    while !vm.halted() && steps < config.profile_steps {
        let pc = vm.pc_index();
        if vm.step().is_err() {
            // A program that faults mid-profile gets no fusion; the real
            // run will surface the fault identically.
            return fuse;
        }
        if pc == prev.wrapping_add(1) {
            pair_counts[prev] += 1;
        }
        prev = pc;
        steps += 1;
    }
    for (i, f) in fuse.iter_mut().enumerate().take(n - 1) {
        if pair_counts[i] >= config.fusion_min_count
            && classify_pair(program.insts[i], program.insts[i + 1]).is_some()
        {
            *f = true;
        }
    }
    fuse
}

/// What a recorded step expects from its re-execution; anything else is a
/// guard failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// Fall through to the next slot.
    Next,
    /// Fused pair fall-through (advance two slots).
    Skip2,
    /// Transfer to exactly this target (taken branch, jump, or `jr` with
    /// the recorded destination).
    Taken(usize),
}

/// One step of a recorded loop body.
#[derive(Debug, Clone, Copy)]
struct GStep {
    op: FastOp,
    slot: usize,
    expect: Expect,
}

/// A completed loop recording, ready for replay.
#[derive(Debug, Clone)]
struct LoopTrace {
    body: Vec<GStep>,
    /// Original instructions one full iteration executes.
    steps_per_iter: u64,
    /// Trace records one full iteration emits.
    emits_per_iter: usize,
}

/// An in-progress loop recording.
#[derive(Debug, Clone)]
struct Recording {
    head: usize,
    body: Vec<GStep>,
    /// The slot execution must resume at for this recording to stay
    /// contiguous across `run_fast` calls.
    resume_at: usize,
}

/// Back-edge counter value marking a head as not worth recording.
const BLACKLISTED: u32 = u32::MAX;

/// Per-[`Vm`] state of the fast tier.
#[derive(Debug, Clone)]
pub(crate) struct FastState {
    ops: Vec<FastOp>,
    config: TierConfig,
    pub(crate) stats: TierStats,
    /// Taken-backward-branch counts per loop head.
    counters: Vec<u32>,
    /// Completed loop traces per loop head.
    traces: Vec<Option<Box<LoopTrace>>>,
    recording: Option<Recording>,
}

impl FastState {
    pub(crate) fn new(insts: &[Inst], fuse: &[bool], config: TierConfig) -> Self {
        let ops = predecode(insts, fuse);
        let stats = TierStats {
            fusion_sites: ops.iter().filter(|&&op| steps_of(op) == 2).count() as u64,
            ..TierStats::default()
        };
        FastState {
            counters: vec![0; ops.len()],
            traces: vec![None; ops.len()],
            recording: None,
            ops,
            config,
            stats,
        }
    }

    fn abort_recording(&mut self) {
        if self.recording.take().is_some() {
            self.stats.record_aborts += 1;
        }
    }

    /// Called from `Vm::step`: manual interpreter stepping breaks the
    /// contiguity a recording depends on.
    pub(crate) fn note_interpreter_step(&mut self) {
        self.abort_recording();
    }
}

/// Limit context shared by the dispatch loop, fused-pair boundaries and
/// replay.
#[derive(Debug, Clone, Copy)]
struct Lim {
    /// `min(window end, instruction budget)` — no op may execute once
    /// `steps` reaches this.
    stop_at: u64,
    /// Record cap of the current call.
    max_records: usize,
    /// True when a wall-clock deadline is configured (polled whenever
    /// `steps & DEADLINE_POLL_MASK == 0`, like the interpreter).
    poll: bool,
}

/// Control-flow outcome of executing one [`FastOp`].
enum Flow {
    /// Fall through to the next slot.
    Next,
    /// Fused pair completed; skip its second slot.
    Skip2,
    /// Transfer to this slot.
    Br(usize),
    /// `halt` executed; the machine latched `halted`.
    Halt,
    /// A limit boundary landed between the two components of a fused
    /// pair: only the first component executed. The dispatch prologue
    /// re-checks at the second component's standalone slot.
    Pause1,
    /// The op faulted; the `usize` is the faulting instruction's slot —
    /// `slot + 1` when the second component of a fused pair faults, so
    /// `pc` lands exactly where the interpreter's would. `steps` counts
    /// the faulting instruction.
    Fault(usize, VmError),
}

/// Outcome of replaying one recorded step.
enum ReplayStep {
    Matched,
    /// Replay must exit (guard failure or limit boundary); `self.pc` is
    /// set to the correct resume slot.
    Exit,
    Err(VmError),
}

impl Vm {
    /// Fast-tier counterpart of the interpreter's run loops: executes
    /// until halt, fault, a tripped [`VmLimits`] guard, `max_steps`
    /// executed instructions, or `max_records` collected records.
    pub(crate) fn run_fast(
        &mut self,
        st: &mut FastState,
        trace: &mut Trace,
        max_steps: u64,
        max_records: usize,
    ) -> Result<(), VmError> {
        // A recording is only valid if execution resumes at the exact
        // slot where the previous call left off.
        if let Some(rec) = &st.recording {
            if rec.resume_at != self.pc {
                st.abort_recording();
            }
        }
        let entry_steps = self.steps;
        let result = self.fast_dispatch(st, trace, max_steps, max_records);
        st.stats.instructions += self.steps - entry_steps;
        if let Some(rec) = &mut st.recording {
            rec.resume_at = self.pc;
        }
        result
    }

    fn fast_dispatch(
        &mut self,
        st: &mut FastState,
        trace: &mut Trace,
        max_steps: u64,
        max_records: usize,
    ) -> Result<(), VmError> {
        if self.halted {
            return Ok(());
        }
        let window_end = self.steps.saturating_add(max_steps);
        let budget = self.limits.max_instructions.unwrap_or(u64::MAX);
        let lim = Lim {
            stop_at: window_end.min(budget),
            max_records,
            poll: self.limits.deadline.is_some(),
        };
        loop {
            // Prologue, in the interpreter's order: caller window and
            // record cap (clean stops), then instruction budget, then
            // the masked deadline poll.
            if self.steps >= lim.stop_at
                || trace.len() >= lim.max_records
                || (lim.poll && self.steps & DEADLINE_POLL_MASK == 0)
            {
                if self.steps >= window_end || trace.len() >= lim.max_records {
                    return Ok(());
                }
                if self.steps >= budget {
                    return Err(self.trip_limit(
                        StopReason::InstructionBudgetExhausted { budget },
                        VmError::InstructionBudgetExhausted { budget },
                    ));
                }
                if let Some(e) = self.poll_deadline() {
                    return Err(e);
                }
            }
            let pc = self.pc;
            let Some(&op) = st.ops.get(pc) else {
                let e = VmError::PcOutOfRange { target: pc as i64 };
                self.error = Some(e.clone());
                self.halted = true;
                return Err(e);
            };
            match self.exec_fast::<false>(op, pc, trace, lim, &mut st.stats) {
                Flow::Next => {
                    self.pc = pc + 1;
                    if st.recording.is_some() {
                        record_step(st, op, pc, Expect::Next);
                    }
                }
                Flow::Skip2 => {
                    self.pc = pc + 2;
                    if st.recording.is_some() {
                        record_step(st, op, pc, Expect::Skip2);
                    }
                }
                Flow::Br(t) => {
                    self.pc = t;
                    if st.recording.is_some() {
                        record_step(st, op, pc, Expect::Taken(t));
                        if st.recording.as_ref().is_some_and(|rec| rec.head == t) {
                            finalize_recording(st);
                        }
                    } else if st.config.replay && t <= pc && is_loop_edge(op) {
                        if st.traces[t].is_some() {
                            let FastState { traces, stats, .. } = st;
                            let tr = traces[t].as_deref().expect("presence checked");
                            self.run_replay(tr, stats, trace, lim)?;
                        } else {
                            let c = &mut st.counters[t];
                            if *c != BLACKLISTED {
                                *c += 1;
                                if *c >= st.config.hot_threshold {
                                    st.recording = Some(Recording {
                                        head: t,
                                        body: Vec::new(),
                                        resume_at: t,
                                    });
                                    st.stats.recordings_started += 1;
                                }
                            }
                        }
                    }
                }
                Flow::Pause1 => {
                    // The fused pair split: resume at the second
                    // component's standalone slot and let the prologue
                    // decide whether to stop, trip or continue.
                    self.pc = pc + 1;
                    st.abort_recording();
                }
                Flow::Halt => return Ok(()),
                Flow::Fault(at, e) => {
                    self.pc = at;
                    self.error = Some(e.clone());
                    self.halted = true;
                    return Err(e);
                }
            }
        }
    }

    /// Arms (if needed) and polls the wall-clock deadline; returns the
    /// tripped error if it expired. Call only when `limits.deadline` is
    /// set and `steps` is on a poll boundary.
    fn poll_deadline(&mut self) -> Option<VmError> {
        let deadline = self.limits.deadline.expect("poll implies deadline");
        let guard = *self
            .deadline
            .get_or_insert_with(|| Deadline::after(deadline));
        if guard.expired() {
            Some(self.trip_limit(
                StopReason::DeadlineExceeded { deadline },
                VmError::DeadlineExceeded { deadline },
            ))
        } else {
            None
        }
    }

    /// Replays a recorded loop body until a guard fails, the program
    /// faults, or a limit boundary requires handing control back to the
    /// dispatch prologue. Limit accounting is exact: iterations that
    /// provably fit (steps, records, and no deadline poll point inside)
    /// run without per-step checks; boundary iterations run in a careful
    /// mode with the full interpreter-order prologue before every step.
    fn run_replay(
        &mut self,
        tr: &LoopTrace,
        stats: &mut TierStats,
        trace: &mut Trace,
        lim: Lim,
    ) -> Result<(), VmError> {
        let entry_steps = self.steps;
        let result = self.replay_loop(tr, stats, trace, lim);
        stats.replay_instructions += self.steps - entry_steps;
        result
    }

    fn replay_loop(
        &mut self,
        tr: &LoopTrace,
        stats: &mut TierStats,
        trace: &mut Trace,
        lim: Lim,
    ) -> Result<(), VmError> {
        // Re-deriving the limit budgets per iteration costs more than a
        // short loop body itself, so whole *batches* of provably-clean
        // iterations are sized up front and run with no limit checks at
        // all; a batch never ends mid-iteration except through a guard
        // failure, fault, or halt, which exit regardless of batching.
        'iters: loop {
            let offset = self.steps & DEADLINE_POLL_MASK;
            let to_next_poll = if offset == 0 {
                0
            } else {
                DEADLINE_POLL_MASK + 1 - offset
            };
            // Iterations that fit the caller window / instruction budget
            // whole.
            let by_steps = lim.stop_at.saturating_sub(self.steps) / tr.steps_per_iter;
            // Records must stay *strictly* under the cap after a bulk
            // iteration: the cap-filling emit can land mid-body, and the
            // interpreter stops there without executing the body's
            // trailing non-emitting instructions. Careful mode does too.
            let by_records = if tr.emits_per_iter == 0 {
                u64::MAX
            } else {
                lim.max_records
                    .saturating_sub(trace.len())
                    .saturating_sub(1) as u64
                    / tr.emits_per_iter as u64
            };
            // Iterations with no deadline-poll point strictly inside
            // (landing exactly on a boundary is fine: the next careful
            // pass or the dispatch prologue polls before the next step).
            let by_poll = if lim.poll {
                to_next_poll / tr.steps_per_iter
            } else {
                u64::MAX
            };
            // Cap a batch so unbounded runs (no limits, nothing emitted)
            // still cycle through the outer loop.
            let batch = by_steps.min(by_records).min(by_poll).min(1 << 20);
            if batch > 0 {
                for _ in 0..batch {
                    for step in &tr.body {
                        match self.replay_step::<true>(step, trace, lim, stats) {
                            ReplayStep::Matched => {}
                            ReplayStep::Exit => break 'iters,
                            ReplayStep::Err(e) => return Err(e),
                        }
                    }
                    stats.replay_iterations += 1;
                }
            } else {
                for step in &tr.body {
                    if self.steps >= lim.stop_at || trace.len() >= lim.max_records {
                        self.pc = step.slot;
                        stats.replay_aborts += 1;
                        break 'iters;
                    }
                    if lim.poll && self.steps & DEADLINE_POLL_MASK == 0 {
                        // Arm like the interpreter would; if expired, let
                        // the dispatch prologue trip it at this slot.
                        let deadline = self.limits.deadline.expect("poll implies deadline");
                        let armed = *self
                            .deadline
                            .get_or_insert_with(|| Deadline::after(deadline));
                        if armed.expired() {
                            self.pc = step.slot;
                            stats.replay_aborts += 1;
                            break 'iters;
                        }
                    }
                    match self.replay_step::<false>(step, trace, lim, stats) {
                        ReplayStep::Matched => {}
                        ReplayStep::Exit => break 'iters,
                        ReplayStep::Err(e) => return Err(e),
                    }
                }
                stats.replay_iterations += 1;
            }
        }
        Ok(())
    }

    #[inline]
    fn replay_step<const BULK: bool>(
        &mut self,
        step: &GStep,
        trace: &mut Trace,
        lim: Lim,
        stats: &mut TierStats,
    ) -> ReplayStep {
        match (
            self.exec_fast::<BULK>(step.op, step.slot, trace, lim, stats),
            step.expect,
        ) {
            (Flow::Next, Expect::Next) | (Flow::Skip2, Expect::Skip2) => ReplayStep::Matched,
            (Flow::Br(t), Expect::Taken(e)) if t == e => ReplayStep::Matched,
            (Flow::Fault(at, e), _) => {
                self.pc = at;
                self.error = Some(e.clone());
                self.halted = true;
                ReplayStep::Err(e)
            }
            (Flow::Pause1, _) => {
                // A limit boundary split a fused pair mid-replay; resume
                // in the dispatch loop at the second component.
                self.pc = step.slot + 1;
                stats.replay_aborts += 1;
                ReplayStep::Exit
            }
            (Flow::Halt, _) => {
                // Recorded bodies never contain halt (recording closes on
                // the back-edge), but keep the exit safe regardless.
                ReplayStep::Exit
            }
            (flow, _) => {
                // Guard failure: this iteration's control decision differs
                // from the recording. The instruction itself executed and
                // was charged exactly like the interpreter; continue at
                // its actual successor.
                stats.guard_failures += 1;
                self.pc = match flow {
                    Flow::Next => step.slot + 1,
                    Flow::Skip2 => step.slot + 2,
                    Flow::Br(t) => t,
                    _ => unreachable!("terminal flows handled above"),
                };
                ReplayStep::Exit
            }
        }
    }

    /// Executes one pre-decoded op at `slot`. Charges `steps` for every
    /// executed component and emits trace records exactly like the
    /// interpreter. `self.pc` is NOT updated — the caller routes the
    /// returned [`Flow`].
    ///
    /// `BULK` compiles out the fused-pair boundary limit checks: a bulk
    /// replay iteration is pre-checked to fit every limit whole (steps,
    /// records, deadline-poll schedule), so mid-pair checks are provably
    /// false there and only cost dispatch time.
    #[inline]
    fn exec_fast<const BULK: bool>(
        &mut self,
        op: FastOp,
        slot: usize,
        trace: &mut Trace,
        lim: Lim,
        stats: &mut TierStats,
    ) -> Flow {
        self.steps += 1;
        macro_rules! r {
            ($n:expr) => {
                self.regs[$n as usize]
            };
        }
        macro_rules! alu {
            ($rd:expr, $v:expr) => {{
                let v = $v;
                self.regs[$rd as usize] = v;
                trace.push(TraceRecord::new(TEXT_BASE + 4 * slot as u64, v as u64));
                Flow::Next
            }};
        }
        // The boundary between the two components of a fused pair: the
        // same checks the dispatch prologue runs between two standalone
        // instructions. Conservative on the deadline mask — Pause1 hands
        // control back so the prologue can poll (and continue through the
        // second component's standalone slot if the deadline holds).
        macro_rules! pair_boundary {
            () => {
                if !BULK
                    && (self.steps >= lim.stop_at
                        || trace.len() >= lim.max_records
                        || (lim.poll && self.steps & DEADLINE_POLL_MASK == 0))
                {
                    return Flow::Pause1;
                }
                self.steps += 1;
                stats.fused_executed += 1;
            };
        }
        match op {
            FastOp::Add { rd, rs, rt } => alu!(rd, r!(rs).wrapping_add(r!(rt))),
            FastOp::Sub { rd, rs, rt } => alu!(rd, r!(rs).wrapping_sub(r!(rt))),
            FastOp::Mul { rd, rs, rt } => alu!(rd, r!(rs).wrapping_mul(r!(rt))),
            FastOp::Div { rd, rs, rt } => {
                let d = r!(rt);
                alu!(rd, if d == 0 { 0 } else { r!(rs).wrapping_div(d) })
            }
            FastOp::Rem { rd, rs, rt } => {
                let d = r!(rt);
                alu!(rd, if d == 0 { 0 } else { r!(rs).wrapping_rem(d) })
            }
            FastOp::And { rd, rs, rt } => alu!(rd, r!(rs) & r!(rt)),
            FastOp::Or { rd, rs, rt } => alu!(rd, r!(rs) | r!(rt)),
            FastOp::Xor { rd, rs, rt } => alu!(rd, r!(rs) ^ r!(rt)),
            FastOp::Slt { rd, rs, rt } => alu!(rd, i64::from(r!(rs) < r!(rt))),
            FastOp::Addi { rd, rs, imm } => alu!(rd, r!(rs).wrapping_add(imm)),
            FastOp::Andi { rd, rs, imm } => alu!(rd, r!(rs) & imm),
            FastOp::Ori { rd, rs, imm } => alu!(rd, r!(rs) | imm),
            FastOp::Xori { rd, rs, imm } => alu!(rd, r!(rs) ^ imm),
            FastOp::Slti { rd, rs, imm } => alu!(rd, i64::from(r!(rs) < imm)),
            FastOp::Sll { rd, rs, sh } => alu!(rd, r!(rs) << sh),
            FastOp::Srl { rd, rs, sh } => alu!(rd, (r!(rs) as u64 >> sh) as i64),
            FastOp::Sra { rd, rs, sh } => alu!(rd, r!(rs) >> sh),
            FastOp::Li { rd, imm } => alu!(rd, imm),
            FastOp::Lw { rd, rs, off } => {
                let addr = r!(rs).wrapping_add(off);
                match usize::try_from(addr).ok().and_then(|a| self.mem.get(a)) {
                    Some(&v) => alu!(rd, v),
                    None => Flow::Fault(slot, VmError::MemoryOutOfBounds { pc: slot, addr }),
                }
            }
            FastOp::LwZero { rs, off } => {
                let addr = r!(rs).wrapping_add(off);
                match usize::try_from(addr).ok().and_then(|a| self.mem.get(a)) {
                    Some(_) => Flow::Next,
                    None => Flow::Fault(slot, VmError::MemoryOutOfBounds { pc: slot, addr }),
                }
            }
            FastOp::Sw { rt, rs, off } => {
                let addr = r!(rs).wrapping_add(off);
                let value = r!(rt);
                match usize::try_from(addr).ok().and_then(|a| self.mem.get_mut(a)) {
                    Some(s) => {
                        *s = value;
                        Flow::Next
                    }
                    None => Flow::Fault(slot, VmError::MemoryOutOfBounds { pc: slot, addr }),
                }
            }
            FastOp::Beq { rs, rt, t } => {
                if r!(rs) == r!(rt) {
                    Flow::Br(t)
                } else {
                    Flow::Next
                }
            }
            FastOp::Bne { rs, rt, t } => {
                if r!(rs) != r!(rt) {
                    Flow::Br(t)
                } else {
                    Flow::Next
                }
            }
            FastOp::Blt { rs, rt, t } => {
                if r!(rs) < r!(rt) {
                    Flow::Br(t)
                } else {
                    Flow::Next
                }
            }
            FastOp::Bge { rs, rt, t } => {
                if r!(rs) >= r!(rt) {
                    Flow::Br(t)
                } else {
                    Flow::Next
                }
            }
            FastOp::J { t } => Flow::Br(t),
            FastOp::Jal { t } => {
                self.regs[31] = (slot + 1) as i64;
                Flow::Br(t)
            }
            FastOp::Jr { rs } => {
                let target = r!(rs);
                if target < 0 || target as usize > self.insts.len() {
                    Flow::Fault(slot, VmError::PcOutOfRange { target })
                } else {
                    Flow::Br(target as usize)
                }
            }
            FastOp::Nop => Flow::Next,
            FastOp::Halt => {
                self.halted = true;
                Flow::Halt
            }
            FastOp::SltBeq { rd, rs, rt, t } => {
                let v = i64::from(r!(rs) < r!(rt));
                self.regs[rd as usize] = v;
                trace.push(TraceRecord::new(TEXT_BASE + 4 * slot as u64, v as u64));
                pair_boundary!();
                if v == 0 {
                    Flow::Br(t)
                } else {
                    Flow::Skip2
                }
            }
            FastOp::SltBne { rd, rs, rt, t } => {
                let v = i64::from(r!(rs) < r!(rt));
                self.regs[rd as usize] = v;
                trace.push(TraceRecord::new(TEXT_BASE + 4 * slot as u64, v as u64));
                pair_boundary!();
                if v != 0 {
                    Flow::Br(t)
                } else {
                    Flow::Skip2
                }
            }
            FastOp::SltiBeq { rd, rs, imm, t } => {
                let v = i64::from(r!(rs) < imm);
                self.regs[rd as usize] = v;
                trace.push(TraceRecord::new(TEXT_BASE + 4 * slot as u64, v as u64));
                pair_boundary!();
                if v == 0 {
                    Flow::Br(t)
                } else {
                    Flow::Skip2
                }
            }
            FastOp::SltiBne { rd, rs, imm, t } => {
                let v = i64::from(r!(rs) < imm);
                self.regs[rd as usize] = v;
                trace.push(TraceRecord::new(TEXT_BASE + 4 * slot as u64, v as u64));
                pair_boundary!();
                if v != 0 {
                    Flow::Br(t)
                } else {
                    Flow::Skip2
                }
            }
            FastOp::LwAdd {
                rd1,
                rs1,
                off,
                rd2,
                ra,
                rb,
            } => {
                let addr = r!(rs1).wrapping_add(off);
                let v = match usize::try_from(addr).ok().and_then(|a| self.mem.get(a)) {
                    Some(&v) => v,
                    None => {
                        return Flow::Fault(slot, VmError::MemoryOutOfBounds { pc: slot, addr })
                    }
                };
                self.regs[rd1 as usize] = v;
                trace.push(TraceRecord::new(TEXT_BASE + 4 * slot as u64, v as u64));
                pair_boundary!();
                let v2 = r!(ra).wrapping_add(r!(rb));
                self.regs[rd2 as usize] = v2;
                trace.push(TraceRecord::new(
                    TEXT_BASE + 4 * (slot as u64 + 1),
                    v2 as u64,
                ));
                Flow::Skip2
            }
            FastOp::LwAddi {
                rd1,
                rs1,
                off,
                rd2,
                ra,
                imm,
            } => {
                let addr = r!(rs1).wrapping_add(off);
                let v = match usize::try_from(addr).ok().and_then(|a| self.mem.get(a)) {
                    Some(&v) => v,
                    None => {
                        return Flow::Fault(slot, VmError::MemoryOutOfBounds { pc: slot, addr })
                    }
                };
                self.regs[rd1 as usize] = v;
                trace.push(TraceRecord::new(TEXT_BASE + 4 * slot as u64, v as u64));
                pair_boundary!();
                let v2 = r!(ra).wrapping_add(imm);
                self.regs[rd2 as usize] = v2;
                trace.push(TraceRecord::new(
                    TEXT_BASE + 4 * (slot as u64 + 1),
                    v2 as u64,
                ));
                Flow::Skip2
            }
            FastOp::AddSw {
                rd,
                ra,
                rb,
                rt,
                rs,
                off,
            } => {
                let v = r!(ra).wrapping_add(r!(rb));
                self.regs[rd as usize] = v;
                trace.push(TraceRecord::new(TEXT_BASE + 4 * slot as u64, v as u64));
                pair_boundary!();
                let addr = r!(rs).wrapping_add(off);
                let value = r!(rt);
                match usize::try_from(addr).ok().and_then(|a| self.mem.get_mut(a)) {
                    Some(s) => {
                        *s = value;
                        Flow::Skip2
                    }
                    None => {
                        Flow::Fault(slot + 1, VmError::MemoryOutOfBounds { pc: slot + 1, addr })
                    }
                }
            }
            FastOp::AddiSw {
                rd,
                ra,
                imm,
                rt,
                rs,
                off,
            } => {
                let v = r!(ra).wrapping_add(imm);
                self.regs[rd as usize] = v;
                trace.push(TraceRecord::new(TEXT_BASE + 4 * slot as u64, v as u64));
                pair_boundary!();
                let addr = r!(rs).wrapping_add(off);
                let value = r!(rt);
                match usize::try_from(addr).ok().and_then(|a| self.mem.get_mut(a)) {
                    Some(s) => {
                        *s = value;
                        Flow::Skip2
                    }
                    None => {
                        Flow::Fault(slot + 1, VmError::MemoryOutOfBounds { pc: slot + 1, addr })
                    }
                }
            }
        }
    }
}

/// Appends one executed step to the active recording, aborting (and
/// blacklisting the head) if the body exceeds the configured cap.
fn record_step(st: &mut FastState, op: FastOp, slot: usize, expect: Expect) {
    let rec = st.recording.as_mut().expect("recording active");
    rec.body.push(GStep { op, slot, expect });
    if rec.body.len() > st.config.max_trace_len {
        let head = rec.head;
        st.counters[head] = BLACKLISTED;
        st.abort_recording();
    }
}

/// Closes the active recording into a replayable loop trace.
fn finalize_recording(st: &mut FastState) {
    let rec = st.recording.take().expect("recording active");
    let steps_per_iter = rec.body.iter().map(|s| steps_of(s.op)).sum();
    let emits_per_iter = rec.body.iter().map(|s| emits_of(s.op)).sum();
    st.stats.traces_recorded += 1;
    st.traces[rec.head] = Some(Box::new(LoopTrace {
        body: rec.body,
        steps_per_iter,
        emits_per_iter,
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn classify_recognizes_kernel_idioms() {
        // slti r3, r1, 10 ; bne r3, r0, loop
        assert_eq!(
            classify_pair(Inst::Slti(3, 1, 10), Inst::Bne(3, 0, 2)),
            Some(FusedKind::CompareBranch)
        );
        // Operand order swapped on the branch.
        assert_eq!(
            classify_pair(Inst::Slt(4, 1, 2), Inst::Beq(0, 4, 9)),
            Some(FusedKind::CompareBranch)
        );
        assert_eq!(
            classify_pair(Inst::Lw(2, 0, 1), Inst::Addi(3, 2, 1)),
            Some(FusedKind::LoadAdd)
        );
        assert_eq!(
            classify_pair(Inst::Addi(2, 2, 1), Inst::Sw(2, 0, 5)),
            Some(FusedKind::AddStore)
        );
    }

    #[test]
    fn classify_rejects_unsafe_pairs() {
        // Branch compares something other than the slt result vs r0.
        assert_eq!(classify_pair(Inst::Slt(3, 1, 2), Inst::Bne(3, 4, 0)), None);
        assert_eq!(classify_pair(Inst::Slt(3, 1, 2), Inst::Bne(1, 0, 0)), None);
        // r0 destinations change emit behaviour; never fused.
        assert_eq!(classify_pair(Inst::Slt(0, 1, 2), Inst::Bne(0, 0, 0)), None);
        assert_eq!(classify_pair(Inst::Lw(0, 0, 1), Inst::Add(3, 1, 2)), None);
        assert_eq!(classify_pair(Inst::Lw(2, 0, 1), Inst::Add(0, 1, 2)), None);
        assert_eq!(classify_pair(Inst::Add(0, 1, 2), Inst::Sw(2, 0, 5)), None);
        // Unrelated neighbours.
        assert_eq!(classify_pair(Inst::Nop, Inst::Halt), None);
    }

    #[test]
    fn predecode_keeps_one_slot_per_instruction() {
        let program = assemble(
            ".text
             main: li r1, 0
             loop: slti r2, r1, 3
                   addi r1, r1, 1
                   bne r2, r0, loop
                   halt",
        )
        .unwrap();
        let fuse = vec![false; program.insts.len()];
        let ops = predecode(&program.insts, &fuse);
        assert_eq!(ops.len(), program.insts.len());
        assert!(matches!(
            ops[1],
            FastOp::Slti {
                rd: 2,
                rs: 1,
                imm: 3
            }
        ));
        assert!(matches!(ops[4], FastOp::Halt));
    }

    #[test]
    fn predecode_lowers_r0_writes_to_nops() {
        let program =
            assemble(".text\nmain: li r0, 9\nadd r0, r1, r2\nlw r0, 0(r30)\nhalt").unwrap();
        let fuse = vec![false; program.insts.len()];
        let ops = predecode(&program.insts, &fuse);
        assert!(matches!(ops[0], FastOp::Nop));
        assert!(matches!(ops[1], FastOp::Nop));
        assert!(matches!(ops[2], FastOp::LwZero { rs: 30, off: 0 }));
    }

    #[test]
    fn fused_slot_keeps_standalone_second_op() {
        let program = assemble(
            ".text
             main: li r1, 0
             loop: addi r1, r1, 1
                   slti r2, r1, 5
                   bne r2, r0, loop
                   halt",
        )
        .unwrap();
        let mut fuse = vec![false; program.insts.len()];
        fuse[2] = true; // slti+bne
        let ops = predecode(&program.insts, &fuse);
        assert!(matches!(
            ops[2],
            FastOp::SltiBne {
                rd: 2,
                rs: 1,
                imm: 5,
                t: 1
            }
        ));
        // The second slot of the pair still holds the standalone branch.
        assert!(matches!(ops[3], FastOp::Bne { rs: 2, rt: 0, t: 1 }));
    }

    #[test]
    fn static_fusion_selects_matching_pairs() {
        let program = assemble(
            ".text
             main: li r1, 0
             loop: addi r1, r1, 1
                   slti r2, r1, 5
                   bne r2, r0, loop
                   halt",
        )
        .unwrap();
        let config = TierConfig {
            profile_steps: 0,
            ..TierConfig::default()
        };
        let fuse = select_fusions(&program, &VmLimits::default(), &config);
        assert_eq!(fuse, vec![false, false, true, false, false]);
    }

    #[test]
    fn profiled_fusion_requires_hot_pairs() {
        let program = assemble(
            ".text
             main: li r1, 0
             loop: addi r1, r1, 1
                   slti r2, r1, 500
                   bne r2, r0, loop
                   halt",
        )
        .unwrap();
        let hot = TierConfig {
            profile_steps: 10_000,
            fusion_min_count: 100,
            ..TierConfig::default()
        };
        let fuse = select_fusions(&program, &VmLimits::default(), &hot);
        assert!(fuse[2], "a 500-iteration pair is hot");
        let cold = TierConfig {
            profile_steps: 10,
            fusion_min_count: 100,
            ..TierConfig::default()
        };
        let fuse = select_fusions(&program, &VmLimits::default(), &cold);
        assert!(!fuse[2], "pair never reaches the threshold in 10 steps");
    }

    #[test]
    fn tier_round_trips_through_strings() {
        assert_eq!("fast".parse::<Tier>().unwrap(), Tier::Fast);
        assert_eq!("interp".parse::<Tier>().unwrap(), Tier::Interp);
        assert_eq!(Tier::Fast.to_string(), "fast");
        assert_eq!(Tier::Interp.to_string(), "interp");
        assert!("jit".parse::<Tier>().is_err());
        assert_eq!(Tier::default(), Tier::Fast);
    }
}
