//! The instruction set of the mini RISC virtual machine.
//!
//! A deliberately small MIPS-like integer ISA: 32 general-purpose 64-bit
//! registers (`r0` hardwired to zero), word-addressed data memory, and a
//! separate instruction space (Harvard style — code is not readable as
//! data). It is just large enough to express the integer kernels whose
//! value traces the paper studies: arithmetic, logic, shifts, comparisons
//! (`slt`, the paper's example of a near-constant producer), loads/stores,
//! and branches.

/// A register number, 0..=31. Register 0 always reads as zero and ignores
/// writes.
pub type Reg = u8;

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 32;

/// One decoded instruction.
///
/// Branch and jump targets are absolute instruction indices (the assembler
/// resolves labels to these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Inst {
    /// `rd = rs + rt`
    Add(Reg, Reg, Reg),
    /// `rd = rs - rt`
    Sub(Reg, Reg, Reg),
    /// `rd = rs * rt` (wrapping)
    Mul(Reg, Reg, Reg),
    /// `rd = rs / rt` (0 if `rt` is 0, like MIPS leaving HI/LO undefined —
    /// we define it for determinism)
    Div(Reg, Reg, Reg),
    /// `rd = rs % rt` (0 if `rt` is 0)
    Rem(Reg, Reg, Reg),
    /// `rd = rs + imm`
    Addi(Reg, Reg, i64),
    /// `rd = rs & rt`
    And(Reg, Reg, Reg),
    /// `rd = rs | rt`
    Or(Reg, Reg, Reg),
    /// `rd = rs ^ rt`
    Xor(Reg, Reg, Reg),
    /// `rd = rs & imm`
    Andi(Reg, Reg, i64),
    /// `rd = rs | imm`
    Ori(Reg, Reg, i64),
    /// `rd = rs ^ imm`
    Xori(Reg, Reg, i64),
    /// `rd = rs << shamt`
    Sll(Reg, Reg, u8),
    /// `rd = (rs as u64) >> shamt`
    Srl(Reg, Reg, u8),
    /// `rd = rs >> shamt` (arithmetic)
    Sra(Reg, Reg, u8),
    /// `rd = (rs < rt) ? 1 : 0` (signed)
    Slt(Reg, Reg, Reg),
    /// `rd = (rs < imm) ? 1 : 0` (signed)
    Slti(Reg, Reg, i64),
    /// `rd = imm` (also used for `la`, with the label's address)
    Li(Reg, i64),
    /// `rd = mem[rs + offset]`
    Lw(Reg, i64, Reg),
    /// `mem[rs + offset] = rt`
    Sw(Reg, i64, Reg),
    /// Branch to `target` if `rs == rt`
    Beq(Reg, Reg, usize),
    /// Branch to `target` if `rs != rt`
    Bne(Reg, Reg, usize),
    /// Branch to `target` if `rs < rt` (signed)
    Blt(Reg, Reg, usize),
    /// Branch to `target` if `rs >= rt` (signed)
    Bge(Reg, Reg, usize),
    /// Unconditional jump
    J(usize),
    /// Jump and link: `r31 = return index`, jump to `target`
    Jal(usize),
    /// Jump to the instruction index in `rs`
    Jr(Reg),
    /// No operation
    Nop,
    /// Stop execution
    Halt,
}

impl Inst {
    /// The destination register this instruction writes, if any.
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Inst::Add(rd, ..)
            | Inst::Sub(rd, ..)
            | Inst::Mul(rd, ..)
            | Inst::Div(rd, ..)
            | Inst::Rem(rd, ..)
            | Inst::Addi(rd, ..)
            | Inst::And(rd, ..)
            | Inst::Or(rd, ..)
            | Inst::Xor(rd, ..)
            | Inst::Andi(rd, ..)
            | Inst::Ori(rd, ..)
            | Inst::Xori(rd, ..)
            | Inst::Sll(rd, ..)
            | Inst::Srl(rd, ..)
            | Inst::Sra(rd, ..)
            | Inst::Slt(rd, ..)
            | Inst::Slti(rd, ..)
            | Inst::Li(rd, ..)
            | Inst::Lw(rd, ..) => Some(rd),
            // jal writes r31, but jumps are excluded from value prediction
            // (§4 of the paper), so it is not reported as a value producer.
            _ => None,
        }
    }

    /// The assembly mnemonic, for per-opcode histograms and reports.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Inst::Add(..) => "add",
            Inst::Sub(..) => "sub",
            Inst::Mul(..) => "mul",
            Inst::Div(..) => "div",
            Inst::Rem(..) => "rem",
            Inst::Addi(..) => "addi",
            Inst::And(..) => "and",
            Inst::Or(..) => "or",
            Inst::Xor(..) => "xor",
            Inst::Andi(..) => "andi",
            Inst::Ori(..) => "ori",
            Inst::Xori(..) => "xori",
            Inst::Sll(..) => "sll",
            Inst::Srl(..) => "srl",
            Inst::Sra(..) => "sra",
            Inst::Slt(..) => "slt",
            Inst::Slti(..) => "slti",
            Inst::Li(..) => "li",
            Inst::Lw(..) => "lw",
            Inst::Sw(..) => "sw",
            Inst::Beq(..) => "beq",
            Inst::Bne(..) => "bne",
            Inst::Blt(..) => "blt",
            Inst::Bge(..) => "bge",
            Inst::J(..) => "j",
            Inst::Jal(..) => "jal",
            Inst::Jr(..) => "jr",
            Inst::Nop => "nop",
            Inst::Halt => "halt",
        }
    }

    /// True if this instruction is a branch or jump (excluded from value
    /// prediction per the paper's methodology).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Beq(..)
                | Inst::Bne(..)
                | Inst::Blt(..)
                | Inst::Bge(..)
                | Inst::J(..)
                | Inst::Jal(..)
                | Inst::Jr(..)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dest_reported_for_value_producers() {
        assert_eq!(Inst::Add(3, 1, 2).dest(), Some(3));
        assert_eq!(Inst::Lw(5, 0, 1).dest(), Some(5));
        assert_eq!(Inst::Slti(7, 1, 4).dest(), Some(7));
        assert_eq!(Inst::Li(9, -2).dest(), Some(9));
    }

    #[test]
    fn stores_branches_and_jumps_produce_no_value() {
        for inst in [
            Inst::Sw(1, 0, 2),
            Inst::Beq(1, 2, 0),
            Inst::J(0),
            Inst::Jal(0),
            Inst::Jr(31),
            Inst::Nop,
            Inst::Halt,
        ] {
            assert_eq!(inst.dest(), None, "{inst:?}");
        }
    }

    #[test]
    fn control_classification() {
        assert!(Inst::Beq(0, 0, 0).is_control());
        assert!(Inst::Jal(4).is_control());
        assert!(!Inst::Add(1, 2, 3).is_control());
        assert!(!Inst::Sw(1, 0, 2).is_control());
    }
}
