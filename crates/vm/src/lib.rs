//! A small MIPS-like integer RISC virtual machine, assembler and benchmark
//! kernels that emit value traces.
//!
//! The paper generates its value traces with SimpleScalar 2.0 (`sim-safe`)
//! executing SPECint95 binaries (§4). This crate is the repository's
//! substitute substrate: real programs, written in a small assembly
//! language, run on an interpreter that emits one [`TraceRecord`] per
//! executed integer register-writing instruction (loads included; stores,
//! branches and jumps excluded — the paper's prediction-eligible set).
//!
//! Because the kernels are real code, their traces exhibit the mechanisms
//! the paper discusses: loop induction variables and address streams form
//! stride patterns, `slt` results form near-constant patterns, and
//! data-structure traversals form repeating contexts. The bundled
//! [`programs`] include `norm` — a faithful translation of the paper's
//! Figure 5 kernel — used to regenerate Figures 6 and 9.
//!
//! ```
//! use dfcm_vm::{assemble, Vm};
//! use dfcm_trace::TraceSource;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(dfcm_vm::programs::NORM)?;
//! let mut vm = Vm::new(program);
//! let trace = vm.take_trace(10_000);
//! assert_eq!(trace.len(), 10_000);
//! # Ok(())
//! # }
//! ```
//!
//! [`TraceRecord`]: dfcm_trace::TraceRecord

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
pub mod disasm;
mod fast;
mod isa;
pub mod profile;
pub mod programs;
pub mod suite;
mod vm;

pub use crate::asm::{assemble, AsmError, Program, DATA_BASE, MAX_DATA_WORDS};
pub use crate::disasm::{disassemble, render_inst};
pub use crate::fast::{classify_pair, FusedKind, Tier, TierConfig, TierStats};
pub use crate::isa::{Inst, Reg, NUM_REGS};
pub use crate::vm::{
    RunResult, StopReason, Vm, VmError, VmLimits, DEFAULT_MEMORY_WORDS, TEXT_BASE,
};
