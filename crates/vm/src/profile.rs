//! Execution profiling for VM runs: instruction mix, hot spots and
//! per-PC execution counts.
//!
//! The paper's workload characterization (which instructions produce the
//! stride patterns, where the `slt` constants come from) is easier to
//! follow with a profile of the actual kernel execution; this module
//! produces one without disturbing the traced run.

use std::collections::HashMap;
use std::fmt;

use crate::isa::Inst;
use crate::vm::{Vm, VmError, TEXT_BASE};

/// Coarse instruction classes for the mix report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Arithmetic and logic (including shifts and immediates).
    Alu,
    /// Comparison producers (`slt`, `slti`) — the paper's near-constant
    /// pattern source.
    Compare,
    /// Constant loads (`li`, including lowered `la`).
    Constant,
    /// Memory loads.
    Load,
    /// Memory stores.
    Store,
    /// Branches and jumps.
    Control,
    /// `nop` and `halt`.
    Other,
}

impl InstClass {
    /// Classifies one instruction.
    pub fn of(inst: &Inst) -> InstClass {
        match inst {
            Inst::Slt(..) | Inst::Slti(..) => InstClass::Compare,
            Inst::Li(..) => InstClass::Constant,
            Inst::Lw(..) => InstClass::Load,
            Inst::Sw(..) => InstClass::Store,
            Inst::Nop | Inst::Halt => InstClass::Other,
            i if i.is_control() => InstClass::Control,
            _ => InstClass::Alu,
        }
    }

    /// All classes, in report order.
    pub const ALL: [InstClass; 7] = [
        InstClass::Alu,
        InstClass::Compare,
        InstClass::Constant,
        InstClass::Load,
        InstClass::Store,
        InstClass::Control,
        InstClass::Other,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            InstClass::Alu => "alu",
            InstClass::Compare => "compare",
            InstClass::Constant => "constant",
            InstClass::Load => "load",
            InstClass::Store => "store",
            InstClass::Control => "control",
            InstClass::Other => "other",
        }
    }
}

/// An execution profile of a VM run.
#[derive(Debug, Clone, Default)]
pub struct ExecutionProfile {
    /// Executed-instruction count per static instruction index.
    pub per_pc: HashMap<usize, u64>,
    /// Executed-instruction count per class.
    pub per_class: HashMap<InstClass, u64>,
    /// Executed-instruction count per mnemonic (per-opcode histogram).
    pub per_mnemonic: HashMap<&'static str, u64>,
    /// Dynamic count of adjacent static pairs: `(i, i + 1)` is counted
    /// each time instruction `i + 1` executes immediately after
    /// instruction `i` fell through to it. This is the input to the fast
    /// tier's superinstruction-fusion selection.
    pub pairs: HashMap<(usize, usize), u64>,
    /// Total instructions executed.
    pub total: u64,
    /// Trace records emitted (value-producing executions).
    pub emitted: u64,
}

impl ExecutionProfile {
    /// Fraction of executed instructions in `class`.
    pub fn class_fraction(&self, class: InstClass) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            *self.per_class.get(&class).unwrap_or(&0) as f64 / self.total as f64
        }
    }

    /// The `n` most-executed static instructions, as
    /// `(instruction index, count)` sorted by descending count.
    pub fn hottest(&self, n: usize) -> Vec<(usize, u64)> {
        let mut entries: Vec<(usize, u64)> = self.per_pc.iter().map(|(&i, &c)| (i, c)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries.truncate(n);
        entries
    }

    /// The `n` most-executed adjacent static pairs, as
    /// `((first index, second index), count)` sorted by descending count.
    /// These are the fusion candidates of the fast tier.
    pub fn hot_pairs(&self, n: usize) -> Vec<((usize, usize), u64)> {
        let mut entries: Vec<((usize, usize), u64)> =
            self.pairs.iter().map(|(&p, &c)| (p, c)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries.truncate(n);
        entries
    }

    /// Per-opcode execution counts sorted by descending count.
    pub fn mnemonic_counts(&self) -> Vec<(&'static str, u64)> {
        let mut entries: Vec<(&'static str, u64)> =
            self.per_mnemonic.iter().map(|(&m, &c)| (m, c)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        entries
    }

    /// Fraction of all executed instructions covered by the `n` hottest
    /// static instructions — the power-law hotness the table predictors
    /// rely on.
    pub fn hot_coverage(&self, n: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hot: u64 = self.hottest(n).iter().map(|&(_, c)| c).sum();
        hot as f64 / self.total as f64
    }
}

impl fmt::Display for ExecutionProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} instructions executed, {} records emitted",
            self.total, self.emitted
        )?;
        for class in InstClass::ALL {
            let fraction = self.class_fraction(class);
            if fraction > 0.0 {
                writeln!(f, "  {:<9} {:>5.1}%", class.label(), 100.0 * fraction)?;
            }
        }
        write!(
            f,
            "  top-10 static instructions cover {:.1}%",
            100.0 * self.hot_coverage(10)
        )
    }
}

/// Runs `vm` for at most `max_steps`, collecting an execution profile.
/// The machine's architectural behaviour is identical to [`Vm::run`].
///
/// # Errors
///
/// Propagates [`VmError`] from the underlying execution.
pub fn run_profiled(vm: &mut Vm, max_steps: u64) -> Result<ExecutionProfile, VmError> {
    let mut profile = ExecutionProfile::default();
    let start = vm.steps();
    let mut prev: Option<usize> = None;
    while !vm.halted() && vm.steps() - start < max_steps {
        let pc_index = vm.pc_index();
        let Some(inst) = vm.inst_at(pc_index) else {
            break;
        };
        let emitted = vm.step()?.is_some();
        *profile.per_pc.entry(pc_index).or_default() += 1;
        *profile.per_class.entry(InstClass::of(&inst)).or_default() += 1;
        *profile.per_mnemonic.entry(inst.mnemonic()).or_default() += 1;
        if pc_index > 0 && prev == Some(pc_index - 1) {
            *profile.pairs.entry((pc_index - 1, pc_index)).or_default() += 1;
        }
        prev = Some(pc_index);
        profile.total += 1;
        profile.emitted += u64::from(emitted);
    }
    Ok(profile)
}

/// Maps an instruction index back to its trace PC.
pub fn pc_of_index(index: usize) -> u64 {
    TEXT_BASE + 4 * index as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::programs;

    fn profile_of(src: &str, max: u64) -> ExecutionProfile {
        let mut vm = Vm::new(assemble(src).unwrap());
        run_profiled(&mut vm, max).unwrap()
    }

    #[test]
    fn counts_match_simple_program() {
        let profile = profile_of(
            ".text
             main: li r1, 3
             loop: addi r1, r1, -1
                   bne r1, r0, loop
                   halt",
            1000,
        );
        // li once; addi and bne three times each; halt executes but does
        // not advance past itself.
        assert_eq!(profile.per_pc[&0], 1);
        assert_eq!(profile.per_pc[&1], 3);
        assert_eq!(profile.per_pc[&2], 3);
        assert_eq!(profile.total, 8);
        assert_eq!(profile.emitted, 4); // li + 3x addi
    }

    #[test]
    fn class_mix_sums_to_one() {
        let profile = profile_of(programs::SIEVE, 2_000_000);
        let sum: f64 = InstClass::ALL
            .iter()
            .map(|&c| profile.class_fraction(c))
            .sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(profile.class_fraction(InstClass::Store) > 0.0);
        assert!(profile.class_fraction(InstClass::Control) > 0.1);
    }

    #[test]
    fn hottest_identifies_inner_loops() {
        let profile = profile_of(programs::MATMUL, 10_000_000);
        let hottest = profile.hottest(12);
        // The 12 instructions of the mk inner loop dominate a 32^3 matmul.
        assert!(
            profile.hot_coverage(12) > 0.6,
            "{}",
            profile.hot_coverage(12)
        );
        assert!(hottest[0].1 > 30_000);
    }

    #[test]
    fn profiled_run_matches_plain_run() {
        let src = programs::QUEENS;
        let mut plain = Vm::new(assemble(src).unwrap());
        let plain_result = plain.run(50_000_000).unwrap();
        let mut profiled = Vm::new(assemble(src).unwrap());
        let profile = run_profiled(&mut profiled, 50_000_000).unwrap();
        assert_eq!(profile.total, plain_result.steps);
        assert_eq!(profile.emitted, plain_result.trace.len() as u64);
        assert_eq!(profiled.reg(25), plain.reg(25));
    }

    #[test]
    fn display_renders_report() {
        let profile = profile_of(programs::QUEENS, 100_000);
        let report = profile.to_string();
        assert!(report.contains("instructions executed"));
        assert!(report.contains("alu"));
        assert!(report.contains("top-10"));
    }

    #[test]
    fn classes_cover_isa() {
        assert_eq!(InstClass::of(&Inst::Slt(1, 2, 3)), InstClass::Compare);
        assert_eq!(InstClass::of(&Inst::Li(1, 0)), InstClass::Constant);
        assert_eq!(InstClass::of(&Inst::Lw(1, 0, 2)), InstClass::Load);
        assert_eq!(InstClass::of(&Inst::Sw(1, 0, 2)), InstClass::Store);
        assert_eq!(InstClass::of(&Inst::Jal(0)), InstClass::Control);
        assert_eq!(InstClass::of(&Inst::Add(1, 2, 3)), InstClass::Alu);
        assert_eq!(InstClass::of(&Inst::Halt), InstClass::Other);
    }

    #[test]
    fn pc_mapping() {
        assert_eq!(pc_of_index(0), TEXT_BASE);
        assert_eq!(pc_of_index(3), TEXT_BASE + 12);
    }
}
