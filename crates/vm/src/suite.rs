//! The VM kernels packaged as a benchmark suite for the evaluation
//! harness.
//!
//! Where `dfcm_trace::suite` provides statistically-calibrated synthetic
//! stand-ins, this module provides the *Tier A* workloads of DESIGN.md:
//! real programs executing on the interpreter. Both produce
//! [`BenchmarkTrace`]s, so every harness function (suite runs, sweeps,
//! aliasing analysis) works unchanged on either tier.

use dfcm_trace::BenchmarkTrace;

use crate::asm::assemble;
use crate::fast::Tier;
use crate::programs;
use crate::vm::{Vm, VmLimits};

/// Generates traces for every bundled kernel, each capped at
/// `max_records` records (kernels that halt earlier contribute their full
/// run). Runs on [`Tier::Fast`]; the tiers are differentially verified to
/// be bit-identical, so callers see the exact interpreter trace, faster.
///
/// # Panics
///
/// Panics if a bundled kernel fails to assemble or faults — both indicate
/// a broken build, not a caller error.
pub fn kernel_traces(max_records: usize) -> Vec<BenchmarkTrace> {
    kernel_traces_with(max_records, Tier::Fast)
}

/// As [`kernel_traces`] with an explicit execution tier.
///
/// # Panics
///
/// Panics if a bundled kernel fails to assemble or faults.
pub fn kernel_traces_with(max_records: usize, tier: Tier) -> Vec<BenchmarkTrace> {
    programs::all()
        .into_iter()
        .map(|(name, src)| {
            let program = assemble(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut vm = Vm::with_tier(program, VmLimits::default(), tier)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let trace = vm
                .try_take_trace(max_records)
                .unwrap_or_else(|e| panic!("{name} faulted: {e}"));
            BenchmarkTrace { name, trace }
        })
        .collect()
}

/// Generates a trace for one bundled kernel by name (on [`Tier::Fast`]).
pub fn kernel_trace(name: &str, max_records: usize) -> Option<BenchmarkTrace> {
    kernel_trace_with(name, max_records, Tier::Fast)
}

/// As [`kernel_trace`] with an explicit execution tier.
pub fn kernel_trace_with(name: &str, max_records: usize, tier: Tier) -> Option<BenchmarkTrace> {
    let src = programs::by_name(name)?;
    let program = assemble(src).expect("bundled kernel assembles");
    let mut vm =
        Vm::with_tier(program, VmLimits::default(), tier).unwrap_or_else(|e| panic!("{name}: {e}"));
    let registered = programs::all().iter().find(|&&(n, _)| n == name)?.0;
    Some(BenchmarkTrace {
        name: registered,
        trace: vm
            .try_take_trace(max_records)
            .unwrap_or_else(|e| panic!("{name} faulted: {e}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_produce_traces() {
        let traces = kernel_traces(20_000);
        assert_eq!(traces.len(), programs::all().len());
        for t in &traces {
            assert!(!t.trace.is_empty(), "{}", t.name);
            assert!(t.trace.len() <= 20_000);
        }
    }

    #[test]
    fn single_kernel_lookup() {
        let t = kernel_trace("sieve", 5_000).expect("sieve exists");
        assert_eq!(t.name, "sieve");
        assert_eq!(t.trace.len(), 5_000);
        assert!(kernel_trace("missing", 10).is_none());
    }

    #[test]
    fn traces_are_deterministic() {
        assert_eq!(kernel_traces(3_000), kernel_traces(3_000));
    }

    #[test]
    fn fast_tier_matches_interpreter_on_suite() {
        assert_eq!(
            kernel_traces_with(2_000, Tier::Fast),
            kernel_traces_with(2_000, Tier::Interp)
        );
    }

    #[test]
    fn names_match_kernel_registry() {
        let traces = kernel_traces(1_000);
        let names: Vec<&str> = traces.iter().map(|t| t.name).collect();
        let expected: Vec<&str> = programs::all().iter().map(|&(n, _)| n).collect();
        assert_eq!(names, expected);
    }
}
