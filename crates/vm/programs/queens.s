; queens — iterative 8-queens solution counter (stand-in for li's
; 7queens.lsp workload: heavy backtracking, small-array loads and
; comparison chains).
;
; Counts all 92 solutions three times; the final per-run count is left in
; r25 for verification.

.data
pos: .space 8                   ; queen column per row, -1 = unplaced

.text
main:
    li   r26, 0                 ; repetition counter
again:
    li   r12, 0                 ; count = 0
    li   r10, 0                 ; row = 0
    la   r20, pos
    li   r2, -1
    sw   r2, 0(r20)             ; pos[0] = -1
outer:
    slt  r7, r10, r0            ; row < 0 -> done
    bne  r7, r0, done_run
    add  r3, r20, r10
    lw   r11, 0(r3)             ; col = pos[row]
next_col:
    addi r11, r11, 1
    slti r7, r11, 8
    beq  r7, r0, backtrack      ; col out of columns
    li   r13, 0                 ; r = 0
safe:
    slt  r7, r13, r10           ; r < row ?
    beq  r7, r0, is_safe
    add  r4, r20, r13
    lw   r5, 0(r4)              ; pc = pos[r]
    beq  r5, r11, next_col      ; same column
    sub  r6, r5, r13
    sub  r8, r11, r10
    beq  r6, r8, next_col       ; same rising diagonal
    add  r6, r5, r13
    add  r8, r11, r10
    beq  r6, r8, next_col       ; same falling diagonal
    addi r13, r13, 1
    j    safe
is_safe:
    add  r3, r20, r10
    sw   r11, 0(r3)             ; pos[row] = col
    slti r7, r10, 7
    beq  r7, r0, solution
    addi r10, r10, 1            ; descend
    add  r3, r20, r10
    li   r2, -1
    sw   r2, 0(r3)
    j    outer
solution:
    addi r12, r12, 1
    j    next_col               ; keep scanning the last row
backtrack:
    addi r10, r10, -1
    j    outer
done_run:
    mov  r25, r12               ; expose the solution count
    addi r26, r26, 1
    slti r7, r26, 3
    bne  r7, r0, again
    halt
