; norm — the paper's Figure 5 kernel (integer variant).
;
; Scales each row of a 200x100 matrix by the largest absolute value in the
; row. The compiler-generated internal variables the paper discusses (the
; induction variables i and j, the scaled index, the row and element
; addresses, and the slt loop-exit comparisons) all appear here explicitly,
; producing the stride and near-constant patterns of Figures 5 and 6.
;
; The matrix is first filled with a deterministic pseudo-pattern
; ((i*31 + j*7) mod 1000) - 500 so the max-scan takes data-dependent
; branches; the normalization pass then runs twice.

.data
matrix: .space 20000            ; 200 rows x 100 cols

.text
main:
    li   r10, 0                 ; i = 0
init_i:
    li   r2, 100
    mul  r12, r10, r2           ; i*100
    la   r3, matrix
    add  r12, r12, r3           ; &matrix[i][0]
    li   r11, 0                 ; j = 0
init_j:
    li   r4, 31
    mul  r5, r10, r4            ; i*31
    li   r4, 7
    mul  r6, r11, r4            ; j*7
    add  r5, r5, r6
    li   r4, 1000
    rem  r5, r5, r4
    addi r5, r5, -500           ; value in [-500, 499]
    add  r13, r12, r11          ; &matrix[i][j]
    sw   r5, 0(r13)
    addi r11, r11, 1
    slti r7, r11, 100
    bne  r7, r0, init_j
    addi r10, r10, 1
    slti r7, r10, 200
    bne  r7, r0, init_i

    li   r21, 0                 ; pass = 0
pass:
    li   r10, 0                 ; i = 0
row:
    li   r2, 100
    mul  r12, r10, r2
    la   r3, matrix
    add  r12, r12, r3           ; row base
    lw   r15, 99(r12)           ; max = matrix[i][99]
    li   r11, 0                 ; j = 0
scan:
    add  r13, r12, r11
    lw   r14, 0(r13)            ; v = matrix[i][j]
    slt  r7, r14, r0
    beq  r7, r0, no_neg
    sub  r14, r0, r14           ; v = |v|
no_neg:
    slt  r7, r15, r14           ; max < |v| ?
    beq  r7, r0, no_new_max
    mov  r15, r14
no_new_max:
    addi r11, r11, 1
    slti r7, r11, 99
    bne  r7, r0, scan
    bne  r15, r0, divide
    li   r15, 1                 ; if (max == 0) max = 1
divide:
    li   r11, 0
div_j:
    add  r13, r12, r11
    lw   r14, 0(r13)
    div  r14, r14, r15
    sw   r14, 0(r13)
    addi r11, r11, 1
    slti r7, r11, 100
    bne  r7, r0, div_j
    addi r10, r10, 1
    slti r7, r10, 200
    bne  r7, r0, row
    addi r21, r21, 1
    slti r7, r21, 2
    bne  r7, r0, pass
    halt
