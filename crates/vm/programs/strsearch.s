; strsearch — naive substring search (go-like: tight compare loops with
; data-dependent early exits over a small alphabet, so partial matches
; abound).
;
; A 4096-character text over the alphabet {0,1,2,3} is generated with an
; LCG, then three fixed 5-character patterns are searched naively; the
; total number of occurrences is left in r25. The text stays in memory at
; `text` so a host-side oracle can verify the count.

.data
text: .space 4096
pats: .word 0, 1, 0, 2, 1,  1, 1, 0, 3, 2,  2, 0, 0, 1, 3

.text
main:
    li   r10, 0                 ; i
    li   r11, 74755             ; LCG state
    la   r20, text
fill:
    li   r2, 1103515245
    mul  r11, r11, r2
    addi r11, r11, 12345
    li   r2, 0x7fffffff
    and  r11, r11, r2
    srl  r3, r11, 9
    andi r3, r3, 3              ; 2-bit symbol
    add  r4, r20, r10
    sw   r3, 0(r4)
    addi r10, r10, 1
    slti r7, r10, 4096
    bne  r7, r0, fill

    li   r25, 0                 ; total occurrences
    li   r15, 0                 ; pattern index (0, 1, 2)
pat_loop:
    la   r21, pats
    li   r2, 5
    mul  r3, r15, r2
    add  r21, r21, r3           ; &pats[p][0]
    li   r10, 0                 ; start position
pos_loop:
    li   r12, 0                 ; offset within pattern
cmp_loop:
    add  r4, r20, r10
    add  r4, r4, r12
    lw   r5, 0(r4)              ; text[i + k]
    add  r6, r21, r12
    lw   r7, 0(r6)              ; pattern[k]
    bne  r5, r7, mismatch
    addi r12, r12, 1
    slti r2, r12, 5
    bne  r2, r0, cmp_loop
    addi r25, r25, 1            ; full match
mismatch:
    addi r10, r10, 1
    slti r2, r10, 4092          ; 4096 - 5 + 1
    bne  r2, r0, pos_loop
    addi r15, r15, 1
    slti r2, r15, 3
    bne  r2, r0, pat_loop
    halt
