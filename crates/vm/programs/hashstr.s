; hashstr — word hashing over a text buffer (stand-in for perl's
; scrabble workload: string scans, rolling polynomial hashes, bucket
; updates; later passes over the same buffer are highly repetitive).
;
; A 2048-"character" buffer (separator every 8th position) is hashed
; word-by-word into 256 buckets, 20 passes. The last word's hash is left
; in r25.

.data
buf: .space 2048
bkt: .space 256

.text
main:
    li   r10, 0
    li   r11, 987654321         ; LCG state
    la   r20, buf
fill:
    li   r2, 1103515245
    mul  r11, r11, r2
    addi r11, r11, 12345
    li   r2, 0x7fffffff
    and  r11, r11, r2
    srl  r3, r11, 13
    andi r4, r10, 7
    li   r2, 7
    beq  r4, r2, sep
    li   r2, 26
    rem  r3, r3, r2
    addi r3, r3, 1              ; letter 1..26
    j    store
sep:
    li   r3, 0                  ; word separator
store:
    add  r5, r20, r10
    sw   r3, 0(r5)
    addi r10, r10, 1
    slti r7, r10, 2048
    bne  r7, r0, fill

    la   r21, bkt
    li   r22, 0                 ; pass
pass:
    li   r10, 0
    li   r12, 0                 ; rolling hash
scan:
    add  r5, r20, r10
    lw   r3, 0(r5)
    beq  r3, r0, word_end
    li   r2, 131
    mul  r12, r12, r2
    add  r12, r12, r3
    li   r2, 0xffffff
    and  r12, r12, r2
    j    next
word_end:
    andi r6, r12, 255
    add  r7, r21, r6
    lw   r8, 0(r7)
    addi r8, r8, 1
    sw   r8, 0(r7)              ; bucket[hash & 255]++
    mov  r25, r12
    li   r12, 0
next:
    addi r10, r10, 1
    slti r2, r10, 2048
    bne  r2, r0, scan
    addi r22, r22, 1
    slti r2, r22, 20
    bne  r2, r0, pass
    halt
