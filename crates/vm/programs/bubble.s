; bubble — bubble sort of 256 pseudo-random values (go/m88ksim-style
; mixture: tight compare-and-swap loops whose branch outcomes become
; progressively more constant as the array sorts).
;
; After sorting, a verification scan leaves 1 in r25 if the array is
; non-decreasing.

.data
arr: .space 256

.text
main:
    li   r10, 0
    li   r11, 555555            ; LCG state
    la   r20, arr
fill:
    li   r2, 1103515245
    mul  r11, r11, r2
    addi r11, r11, 12345
    li   r2, 0x7fffffff
    and  r11, r11, r2
    srl  r3, r11, 11
    andi r3, r3, 0xffff
    add  r4, r20, r10
    sw   r3, 0(r4)
    addi r10, r10, 1
    slti r7, r10, 256
    bne  r7, r0, fill

    li   r12, 255               ; limit
sort_pass:
    li   r10, 0
    li   r15, 0                 ; swapped flag
inner:
    add  r4, r20, r10
    lw   r5, 0(r4)
    lw   r6, 1(r4)
    slt  r7, r6, r5             ; out of order?
    beq  r7, r0, no_swap
    sw   r6, 0(r4)
    sw   r5, 1(r4)
    li   r15, 1
no_swap:
    addi r10, r10, 1
    slt  r7, r10, r12
    bne  r7, r0, inner
    addi r12, r12, -1
    beq  r15, r0, verify        ; early exit when already sorted
    slti r7, r12, 1
    beq  r7, r0, sort_pass

verify:
    li   r10, 0
    li   r25, 1
vloop:
    add  r4, r20, r10
    lw   r5, 0(r4)
    lw   r6, 1(r4)
    slt  r7, r6, r5
    beq  r7, r0, vnext
    li   r25, 0                 ; out of order
vnext:
    addi r10, r10, 1
    slti r7, r10, 255
    bne  r7, r0, vloop
    halt
