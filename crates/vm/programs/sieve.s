; sieve — sieve of Eratosthenes up to 10000, two passes (a classic mix of
; unit-stride scans and p-stride marking loops with many distinct
; strides, exactly the "different stride patterns all require their own
; level-2 entries" situation of the paper's section 2.4).
;
; The prime count (1229) is left in r25.

.data
flags: .space 10000

.text
main:
    li   r22, 0                 ; pass
spass:
    li   r10, 0
    la   r20, flags
clear:
    add  r2, r20, r10
    sw   r0, 0(r2)
    addi r10, r10, 1
    slti r3, r10, 10000
    bne  r3, r0, clear

    li   r10, 2                 ; candidate
    li   r12, 0                 ; prime count
outer:
    add  r2, r20, r10
    lw   r3, 0(r2)
    bne  r3, r0, not_prime
    addi r12, r12, 1
    add  r11, r10, r10          ; first multiple
mark:
    slti r4, r11, 10000
    beq  r4, r0, not_prime
    add  r2, r20, r11
    li   r5, 1
    sw   r5, 0(r2)
    add  r11, r11, r10          ; stride = the prime
    j    mark
not_prime:
    addi r10, r10, 1
    slti r4, r10, 10000
    bne  r4, r0, outer
    mov  r25, r12
    addi r22, r22, 1
    slti r4, r22, 2
    bne  r4, r0, spass
    halt
