; fib — naive recursive Fibonacci of 20 (call-stack-heavy workload:
; deep jal/jr recursion, stack loads and stores whose addresses form
; short up/down stride bursts, and data-dependent branching).
;
; Calling convention: argument in r4, result in r3, sp (r30) points to the
; next free stack slot, growing downward. The result (6765) is left in r25.

.text
main:
    li   r4, 20
    jal  fib
    mov  r25, r3
    halt

fib:
    slti r2, r4, 2
    beq  r2, r0, recurse
    mov  r3, r4                 ; fib(0) = 0, fib(1) = 1
    jr   ra
recurse:
    sw   ra, 0(sp)              ; push return address
    addi sp, sp, -1
    sw   r4, 0(sp)              ; push n
    addi sp, sp, -1
    addi r4, r4, -1
    jal  fib                    ; r3 = fib(n-1)
    sw   r3, 0(sp)              ; push fib(n-1)
    addi sp, sp, -1
    lw   r4, 2(sp)              ; reload n
    addi r4, r4, -2
    jal  fib                    ; r3 = fib(n-2)
    addi sp, sp, 1              ; pop fib(n-1)
    lw   r5, 0(sp)
    add  r3, r3, r5
    addi sp, sp, 1              ; drop n
    addi sp, sp, 1              ; pop return address
    lw   ra, 0(sp)
    jr   ra
