; lzw — dictionary-coder kernel (stand-in for compress: a hot loop of
; hash-table probes keyed by data-dependent values, interleaved with the
; LCG input generator's stride-free value stream).
;
; For each generated input byte, the (previous, current) pair is hashed
; into a 4096-entry table; a hit bumps the match counter (left in r25),
; a miss installs the pair.

.data
table: .space 4096

.text
main:
    li   r10, 0                 ; i = 0
    li   r11, 12345             ; LCG state
    li   r12, 0                 ; prev byte
    li   r14, 0                 ; hits
    la   r20, table
    li   r21, 30000             ; iterations
loop:
    li   r2, 1103515245
    mul  r11, r11, r2
    addi r11, r11, 12345
    li   r2, 0x7fffffff
    and  r11, r11, r2
    srl  r3, r11, 16
    andi r3, r3, 0xff           ; input byte
    li   r2, 31
    mul  r4, r12, r2
    add  r4, r4, r3
    andi r4, r4, 0xfff          ; hash index
    add  r5, r20, r4
    lw   r6, 0(r5)              ; probe
    sll  r8, r12, 8
    add  r8, r8, r3
    addi r8, r8, 1              ; key = prev*256 + byte + 1 (0 = empty)
    bne  r6, r8, miss
    addi r14, r14, 1
    j    cont
miss:
    sw   r8, 0(r5)
cont:
    mov  r12, r3
    addi r10, r10, 1
    slt  r7, r10, r21
    bne  r7, r0, loop
    mov  r25, r14
    halt
