; matmul — 32x32 integer matrix multiply (stand-in for ijpeg: dense
; nested loops over arrays, the stride-dominated workload with the
; paper's largest DFCM gain).
;
; A and B are filled with small deterministic patterns; C = A*B. The
; checksum of C is left in r25.

.data
mat_a: .space 1024
mat_b: .space 1024
mat_c: .space 1024

.text
main:
    li   r10, 0
    la   r20, mat_a
    la   r21, mat_b
init:
    li   r2, 97
    rem  r3, r10, r2
    add  r4, r20, r10
    sw   r3, 0(r4)              ; A[i] = i % 97
    li   r2, 7
    mul  r3, r10, r2
    li   r2, 89
    rem  r3, r3, r2
    add  r4, r21, r10
    sw   r3, 0(r4)              ; B[i] = (7i) % 89
    addi r10, r10, 1
    slti r7, r10, 1024
    bne  r7, r0, init

    la   r22, mat_c
    li   r10, 0                 ; i
mi:
    li   r11, 0                 ; j
mj:
    li   r15, 0                 ; acc
    li   r12, 0                 ; k
    sll  r5, r10, 5             ; i*32
mk:
    add  r6, r5, r12
    add  r6, r20, r6
    lw   r7, 0(r6)              ; A[i][k]
    sll  r8, r12, 5
    add  r8, r8, r11
    add  r8, r21, r8
    lw   r9, 0(r8)              ; B[k][j]
    mul  r9, r7, r9
    add  r15, r15, r9
    addi r12, r12, 1
    slti r2, r12, 32
    bne  r2, r0, mk
    sll  r5, r10, 5
    add  r6, r5, r11
    add  r6, r22, r6
    sw   r15, 0(r6)             ; C[i][j] = acc
    addi r11, r11, 1
    slti r2, r11, 32
    bne  r2, r0, mj
    addi r10, r10, 1
    slti r2, r10, 32
    bne  r2, r0, mi

    ; checksum C
    li   r10, 0
    li   r25, 0
sum:
    add  r2, r22, r10
    lw   r3, 0(r2)
    add  r25, r25, r3
    addi r10, r10, 1
    slti r2, r10, 1024
    bne  r2, r0, sum
    halt
