; treeins — binary search tree build and lookup (stand-in for vortex and
; cc1: pointer-structure traversal, data-dependent branching, repeated
; walks over a stable structure).
;
; 800 pseudo-random keys are inserted into a BST backed by a node pool
; (key, left, right; -1 = null); two lookup passes replay the same key
; stream. The per-pass hit count (always 800) is left in r25.

.data
pool: .space 12288              ; 4096 nodes x 3 words

.text
main:
    li   r21, 3                 ; node size in words
    la   r20, pool
    li   r11, 424242            ; LCG state
    jal  lcg
    sw   r3, 0(r20)             ; root key
    li   r2, -1
    sw   r2, 1(r20)
    sw   r2, 2(r20)
    li   r10, 1                 ; next free node index
    li   r12, 0                 ; keys inserted
ins_loop:
    jal  lcg
    mov  r13, r3                ; key
    li   r14, 0                 ; cur = root
walk:
    mul  r4, r14, r21
    add  r4, r20, r4            ; node address
    lw   r5, 0(r4)              ; cur key
    beq  r5, r13, ins_done      ; duplicate
    slt  r6, r13, r5
    beq  r6, r0, go_right
    lw   r7, 1(r4)              ; left child
    li   r8, 1
    j    have_child
go_right:
    lw   r7, 2(r4)              ; right child
    li   r8, 2
have_child:
    li   r2, -1
    bne  r7, r2, descend
    mul  r5, r10, r21           ; allocate new node
    add  r5, r20, r5
    sw   r13, 0(r5)
    li   r2, -1
    sw   r2, 1(r5)
    sw   r2, 2(r5)
    add  r6, r4, r8             ; link parent slot
    sw   r10, 0(r6)
    addi r10, r10, 1
    j    ins_done
descend:
    mov  r14, r7
    j    walk
ins_done:
    addi r12, r12, 1
    slti r2, r12, 800
    bne  r2, r0, ins_loop

    li   r22, 0                 ; lookup pass
lk_pass:
    li   r11, 424242            ; replay the key stream
    li   r12, 0
    li   r15, 0                 ; found count
lk_loop:
    jal  lcg
    mov  r13, r3
    li   r14, 0
lk_walk:
    li   r2, -1
    beq  r14, r2, lk_next       ; fell off: not found
    mul  r4, r14, r21
    add  r4, r20, r4
    lw   r5, 0(r4)
    beq  r5, r13, lk_found
    slt  r6, r13, r5
    beq  r6, r0, lk_right
    lw   r14, 1(r4)
    j    lk_walk
lk_right:
    lw   r14, 2(r4)
    j    lk_walk
lk_found:
    addi r15, r15, 1
lk_next:
    addi r12, r12, 1
    slti r2, r12, 800
    bne  r2, r0, lk_loop
    mov  r25, r15
    addi r22, r22, 1
    slti r2, r22, 2
    bne  r2, r0, lk_pass
    halt

lcg:
    li   r2, 1103515245
    mul  r11, r11, r2
    addi r11, r11, 12345
    li   r2, 0x7fffffff
    and  r11, r11, r2
    srl  r3, r11, 12
    li   r2, 4000
    rem  r3, r3, r2
    jr   ra
