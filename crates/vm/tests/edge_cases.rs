//! Edge-case and failure-injection tests for the VM and assembler.

use dfcm_trace::TraceSource;
use dfcm_vm::{assemble, Inst, Vm, VmError, DATA_BASE, DEFAULT_MEMORY_WORDS, TEXT_BASE};

#[test]
fn load_at_exact_memory_boundary() {
    // Address == memory size is out of bounds; size-1 is the last valid.
    let words = 1usize << 14;
    let src = format!(".text\nmain: li r1, {}\nlw r2, 0(r1)\nhalt\n", words - 1);
    let mut vm = Vm::with_memory(assemble(&src).unwrap(), words);
    assert!(vm.run(100).unwrap().halted);

    let src = format!(".text\nmain: li r1, {words}\nlw r2, 0(r1)\nhalt\n");
    let mut vm = Vm::with_memory(assemble(&src).unwrap(), words);
    let e = vm.run(100).unwrap_err();
    assert!(matches!(e, VmError::MemoryOutOfBounds { addr, .. } if addr == words as i64));
}

#[test]
fn store_fault_reports_instruction_index() {
    let mut vm = Vm::new(assemble(".text\nmain: li r1, -1\nsw r1, 0(r1)\nhalt\n").unwrap());
    let e = vm.run(100).unwrap_err();
    assert_eq!(e, VmError::MemoryOutOfBounds { pc: 1, addr: -1 });
}

#[test]
fn jr_to_one_past_end_faults_on_next_step() {
    let p = assemble(".text\nmain: li r1, 2\njr r1\n").unwrap();
    assert_eq!(p.insts.len(), 2);
    let mut vm = Vm::new(p);
    // The jump itself is in range (== len is tolerated as a target), but
    // fetching from there faults.
    let e = vm.run(10).unwrap_err();
    assert!(matches!(e, VmError::PcOutOfRange { target: 2 }));
}

#[test]
fn faulted_machine_stays_halted_and_emits_nothing() {
    let mut vm =
        Vm::new(assemble(".text\nmain: li r1, -9\nlw r2, 0(r1)\nli r3, 5\nhalt\n").unwrap());
    assert!(vm.run(100).is_err());
    assert!(vm.halted());
    // Stepping after a fault is a quiet no-op.
    assert_eq!(vm.step().unwrap(), None);
    assert_eq!(vm.next_record(), None);
    // r3 was never reached.
    assert_eq!(vm.reg(3), 0);
}

#[test]
fn data_image_larger_than_memory_rejected() {
    let src = ".data\nbig: .space 100\n.text\nmain: halt\n";
    let program = assemble(src).unwrap();
    let result = std::panic::catch_unwind(|| Vm::with_memory(program, 64));
    assert!(result.is_err(), "oversized data image must be rejected");
}

#[test]
fn empty_space_and_word_directives() {
    let p = assemble(".data\nempty: .space 0\nafter: .word 5\n.text\nmain: la r1, after\nhalt\n")
        .unwrap();
    assert_eq!(p.data, vec![5]);
    assert_eq!(p.insts[0], Inst::Li(1, DATA_BASE));
}

#[test]
fn program_without_halt_runs_off_the_end() {
    let mut vm = Vm::new(assemble(".text\nmain: li r1, 1\n").unwrap());
    let e = vm.run(10).unwrap_err();
    assert!(matches!(e, VmError::PcOutOfRange { .. }));
    // The one instruction still executed and emitted.
    assert_eq!(vm.reg(1), 1);
}

#[test]
fn zero_step_budget_is_a_noop() {
    let mut vm = Vm::new(assemble(".text\nmain: li r1, 1\nhalt\n").unwrap());
    let result = vm.run(0).unwrap();
    assert_eq!(result.steps, 0);
    assert!(!result.halted);
    assert_eq!(vm.reg(1), 0);
}

#[test]
fn run_can_be_resumed_across_budgets() {
    let src =
        ".text\nmain: li r1, 0\nloop: addi r1, r1, 1\nslti r2, r1, 100\nbne r2, r0, loop\nhalt\n";
    let mut vm = Vm::new(assemble(src).unwrap());
    let mut all_records = 0;
    loop {
        let result = vm.run(37).unwrap();
        all_records += result.trace.len();
        if result.halted {
            break;
        }
    }
    assert_eq!(vm.reg(1), 100);
    // li + 100x addi + 100x slti.
    assert_eq!(all_records, 201);
}

#[test]
fn default_memory_fits_all_kernels() {
    // DEFAULT_MEMORY_WORDS must hold the largest bundled data image with
    // room for stacks.
    for (name, src) in dfcm_vm::programs::all() {
        let p = assemble(src).unwrap();
        assert!(
            (DATA_BASE as usize + p.data.len()) * 4 < DEFAULT_MEMORY_WORDS,
            "{name} data image too large for defaults"
        );
    }
}

#[test]
fn trace_pcs_are_stable_across_reruns_and_resume() {
    let src = ".text\nmain: li r1, 7\nadd r2, r1, r1\nhalt\n";
    let mut a = Vm::new(assemble(src).unwrap());
    let ra = a.run(100).unwrap();
    let mut b = Vm::new(assemble(src).unwrap());
    b.run(1).unwrap();
    let rb = b.run(100).unwrap();
    let pcs_a: Vec<u64> = ra.trace.iter().map(|r| r.pc).collect();
    let pcs_b: Vec<u64> = rb.trace.iter().map(|r| r.pc).collect();
    assert_eq!(pcs_a, vec![TEXT_BASE, TEXT_BASE + 4]);
    assert_eq!(pcs_b, vec![TEXT_BASE + 4]);
}

#[test]
fn negative_space_rejected_at_assembly() {
    let e = assemble(".data\nx: .space -4\n.text\nmain: halt\n").unwrap_err();
    assert!(e.message.contains("negative"));
}

#[test]
fn division_extremes_are_defined() {
    let src = format!(
        ".text\nmain: li r1, {}\nli r2, -1\ndiv r3, r1, r2\nrem r4, r1, r2\nhalt\n",
        i64::MIN
    );
    let mut vm = Vm::new(assemble(&src).unwrap());
    // i64::MIN / -1 overflows in two's complement; the VM must not panic.
    let outcome = vm.run(100);
    assert!(outcome.is_ok(), "{outcome:?}");
}
