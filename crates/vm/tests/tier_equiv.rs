//! Differential verification of the fast execution tier.
//!
//! The contract: [`Tier::Fast`] and [`Tier::Interp`] are the *same
//! machine*. Over the whole kernel suite and under proptest-generated
//! programs, both tiers must emit bit-identical value traces, stop for
//! identical [`StopReason`]s/[`VmError`]s with identical step counts, and
//! leave identical architectural state — including every `VmLimits` edge
//! case: budgets landing mid-replay or between the components of a fused
//! pair, deadlines expiring during trace recording, and record caps
//! splitting superinstructions.

use std::time::Duration;

use dfcm_trace::TraceSource;
use dfcm_vm::{assemble, programs, suite, Tier, TierConfig, Vm, VmError, VmLimits};
use proptest::prelude::*;

/// An aggressive tier configuration: static fusion (every matching pair),
/// near-immediate loop recording, small bodies. Maximizes fused/replay
/// coverage so the differential tests actually exercise those paths.
fn aggressive() -> TierConfig {
    TierConfig {
        profile_steps: 0,
        fusion_min_count: 1,
        hot_threshold: 2,
        max_trace_len: 256,
        fusion: true,
        replay: true,
    }
}

/// Builds the two machines for one source under the same limits.
fn pair(src: &str, limits: VmLimits, config: TierConfig) -> (Vm, Vm) {
    let interp = Vm::with_limits(assemble(src).expect("assembles"), limits).expect("loads");
    let fast = Vm::with_tier_config(
        assemble(src).expect("assembles"),
        limits,
        Tier::Fast,
        config,
    )
    .expect("loads");
    (interp, fast)
}

/// Asserts complete architectural equality of two machines.
fn assert_same_state(interp: &Vm, fast: &Vm, context: &str) {
    assert_eq!(interp.steps(), fast.steps(), "{context}: steps");
    assert_eq!(interp.halted(), fast.halted(), "{context}: halted");
    assert_eq!(interp.pc_index(), fast.pc_index(), "{context}: pc");
    assert_eq!(interp.error(), fast.error(), "{context}: error");
    assert_eq!(
        interp.limit_stop(),
        fast.limit_stop(),
        "{context}: limit_stop"
    );
    for r in 0..32 {
        assert_eq!(interp.reg(r), fast.reg(r), "{context}: r{r}");
    }
}

#[test]
fn kernel_suite_traces_bit_identical() {
    // The acceptance-criterion check: every bundled kernel, default
    // fast-tier configuration, bit-identical value traces.
    let interp = suite::kernel_traces_with(25_000, Tier::Interp);
    let fast = suite::kernel_traces_with(25_000, Tier::Fast);
    assert_eq!(interp.len(), fast.len());
    for (i, f) in interp.iter().zip(&fast) {
        assert_eq!(i.name, f.name);
        assert_eq!(i.trace, f.trace, "kernel {} diverged", i.name);
    }
}

#[test]
fn kernel_suite_stop_reasons_and_state_match_across_run_windows() {
    // Chunked `run` calls (odd window sizes force stops at arbitrary
    // points, including mid-replay) must agree step-for-step.
    for (name, src) in programs::all() {
        let (mut interp, mut fast) = pair(src, VmLimits::default(), aggressive());
        for window in 0..40 {
            let max_steps = 7_001 + 13 * window;
            let a = interp.run(max_steps).expect("kernels do not fault");
            let b = fast.run(max_steps).expect("kernels do not fault");
            assert_eq!(a.trace, b.trace, "{name} window {window}: trace");
            assert_eq!(a.steps, b.steps, "{name} window {window}: steps");
            assert_eq!(a.halted, b.halted, "{name} window {window}: halted");
            assert_eq!(
                a.stop_reason(),
                b.stop_reason(),
                "{name} window {window}: stop reason"
            );
            assert_same_state(&interp, &fast, &format!("{name} window {window}"));
            if a.halted {
                break;
            }
        }
    }
}

#[test]
fn replay_actually_engages_on_loop_kernels() {
    // Guard against the differential tests silently comparing two
    // interpreters: the fast tier must fuse and replay on loop kernels.
    let program = assemble(programs::by_name("matmul").unwrap()).unwrap();
    let mut vm =
        Vm::with_tier_config(program, VmLimits::default(), Tier::Fast, aggressive()).unwrap();
    vm.try_take_trace(25_000).unwrap();
    let stats = vm.tier_stats().copied().unwrap();
    assert!(stats.fusion_sites > 0, "no fusion sites: {stats:?}");
    assert!(stats.fused_executed > 0, "fusion never executed: {stats:?}");
    assert!(stats.traces_recorded > 0, "no loop recorded: {stats:?}");
    assert!(
        stats.replay_iterations > 100,
        "replay never engaged: {stats:?}"
    );
    assert!(stats.replay_instructions > 0 && stats.instructions >= stats.replay_instructions);
}

#[test]
fn instruction_budget_trips_identically_including_mid_replay() {
    // A dense budget sweep over a loop-heavy kernel: every budget value
    // must trip on exactly the same instruction in both tiers — budgets
    // landing mid-replay, mid-recording, and between the components of a
    // fused pair included. 4095..4097 straddle the deadline poll mask.
    let src = programs::by_name("sieve").unwrap();
    let budgets = [
        1u64, 2, 3, 17, 100, 101, 1_000, 4_095, 4_096, 4_097, 10_000, 20_011, 50_000,
    ];
    for &budget in &budgets {
        let limits = VmLimits {
            max_instructions: Some(budget),
            ..VmLimits::default()
        };
        let (mut interp, mut fast) = pair(src, limits, aggressive());
        let a = interp.try_take_trace(1_000_000);
        let b = fast.try_take_trace(1_000_000);
        assert_eq!(a, b, "budget {budget}: result");
        assert_eq!(
            a.unwrap_err(),
            VmError::InstructionBudgetExhausted { budget },
            "budget {budget}: error"
        );
        assert_same_state(&interp, &fast, &format!("budget {budget}"));
        assert_eq!(fast.steps(), budget, "budget {budget}: charged exactly");
    }
    // Prove the sweep crossed active replay at the larger budgets.
    let limits = VmLimits {
        max_instructions: Some(50_000),
        ..VmLimits::default()
    };
    let program = assemble(src).unwrap();
    let mut vm = Vm::with_tier_config(program, limits, Tier::Fast, aggressive()).unwrap();
    let _ = vm.try_take_trace(1_000_000);
    assert!(vm.tier_stats().unwrap().replay_iterations > 0);
}

#[test]
fn record_caps_split_fused_pairs_identically() {
    // lw+add and add+sw pairs fuse under static selection; record caps
    // that land between the two components must stop the fast tier at
    // exactly the interpreter's boundary, then resume cleanly.
    let src = ".data
                v: .word 5, 6, 7, 8
                .text
                main: la r1, v
                      li r2, 0
                loop: lw r3, 0(r1)
                      add r2, r2, r3
                      addi r1, r1, 1
                      slti r4, r1, 1028
                      bne r4, r0, loop
                      halt";
    for cap in 1..=12 {
        let (mut interp, mut fast) = pair(src, VmLimits::default(), aggressive());
        loop {
            let a = interp.try_take_trace(cap).expect("no fault");
            let b = fast.try_take_trace(cap).expect("no fault");
            assert_eq!(a, b, "cap {cap}");
            assert_same_state(&interp, &fast, &format!("cap {cap}"));
            if interp.halted() {
                break;
            }
        }
    }
}

#[test]
fn streaming_next_record_matches_interpreter() {
    let src = programs::by_name("fib").unwrap();
    let (mut interp, mut fast) = pair(src, VmLimits::default(), aggressive());
    // Record-at-a-time streaming (the TraceSource path) must agree with
    // the interpreter even though it repeatedly re-enters the fast tier.
    loop {
        let a = interp.next_record();
        let b = fast.next_record();
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
    assert_same_state(&interp, &fast, "streamed to completion");
}

#[test]
fn zero_deadline_trips_both_tiers_at_step_zero() {
    let limits = VmLimits {
        deadline: Some(Duration::ZERO),
        ..VmLimits::default()
    };
    let (mut interp, mut fast) = pair(".text\nmain: j main", limits, aggressive());
    let a = interp.run(u64::MAX).unwrap_err();
    let b = fast.run(u64::MAX).unwrap_err();
    assert_eq!(a, b);
    assert_eq!(
        b,
        VmError::DeadlineExceeded {
            deadline: Duration::ZERO
        }
    );
    assert_same_state(&interp, &fast, "zero deadline");
    assert_eq!(fast.steps(), 0);
}

#[test]
fn generous_deadline_is_invisible() {
    let limits = VmLimits {
        deadline: Some(Duration::from_secs(60)),
        ..VmLimits::default()
    };
    let src = programs::by_name("fib").unwrap();
    let (mut interp, mut fast) = pair(src, limits, aggressive());
    let a = interp.run(10_000_000).unwrap();
    let b = fast.run(10_000_000).unwrap();
    assert_eq!(a, b);
    assert!(b.halted);
    assert_same_state(&interp, &fast, "generous deadline");
}

#[test]
fn short_deadline_stops_replay_on_a_poll_boundary() {
    // Deadline expiring *during* recording/replay: wall-clock trip points
    // are inherently time-dependent, so the two tiers cannot be compared
    // step-for-step — instead both must uphold the interpreter's
    // invariant: the trip lands exactly on a poll boundary and is charged
    // no further instructions.
    let limits = VmLimits {
        deadline: Some(Duration::from_millis(20)),
        ..VmLimits::default()
    };
    let src = ".text
               main: li r1, 0
               loop: addi r1, r1, 1
                     slti r2, r1, 2000000000
                     bne r2, r0, loop
                     halt";
    let program = assemble(src).unwrap();
    let mut vm = Vm::with_tier_config(program, limits, Tier::Fast, aggressive()).unwrap();
    let e = vm.run(u64::MAX).unwrap_err();
    assert_eq!(
        e,
        VmError::DeadlineExceeded {
            deadline: Duration::from_millis(20)
        }
    );
    assert!(vm.halted());
    assert_eq!(vm.steps() & 0xFFF, 0, "trip must land on a poll boundary");
    let stats = vm.tier_stats().unwrap();
    assert!(
        stats.replay_iterations > 0,
        "deadline should have expired under replay: {stats:?}"
    );
}

#[test]
fn jump_into_the_middle_of_a_fused_pair_is_exact() {
    // `jr` targets the second slot of a fused slti+bne pair: the fast
    // tier must execute the standalone branch there, not the fused op.
    let src = ".text
               main: li r5, 4
                     li r1, 0
                     jr r5
               skip: slti r2, r1, 10
                     bne r2, r0, cont
               cont: addi r1, r1, 1
                     slti r2, r1, 10
                     bne r2, r0, mid
                     halt
               mid:  j cont";
    let (mut interp, mut fast) = pair(src, VmLimits::default(), aggressive());
    let a = interp.run(1_000_000).unwrap();
    let b = fast.run(1_000_000).unwrap();
    assert_eq!(a, b);
    assert_same_state(&interp, &fast, "jr into pair");
}

#[test]
fn faults_surface_identically() {
    // Memory fault inside a loop (after replay warm-up) and a wild jr.
    let oob = ".data
               v: .word 1
               .text
               main: la r1, v
                     li r2, 0
               loop: lw r3, 0(r1)
                     add r2, r2, r3
                     addi r1, r1, 97
                     slti r4, r2, 2000000000
                     bne r4, r0, loop
                     halt";
    let (mut interp, mut fast) = pair(oob, VmLimits::default(), aggressive());
    let a = interp.try_take_trace(1_000_000);
    let b = fast.try_take_trace(1_000_000);
    assert_eq!(a, b);
    assert!(matches!(a, Err(VmError::MemoryOutOfBounds { .. })));
    assert_same_state(&interp, &fast, "oob loop");

    let wild = ".text\nmain: li r1, 123456\njr r1";
    let (mut interp, mut fast) = pair(wild, VmLimits::default(), aggressive());
    let a = interp.run(100);
    let b = fast.run(100);
    assert_eq!(a, b);
    assert!(matches!(a, Err(VmError::PcOutOfRange { target: 123456 })));
    assert_same_state(&interp, &fast, "wild jr");
}

#[test]
fn interpreter_stepping_interleaves_soundly_with_fast_runs() {
    let src = programs::by_name("fib").unwrap();
    let (mut interp, mut fast) = pair(src, VmLimits::default(), aggressive());
    // Alternate fast windows with manual interpreter steps on the same
    // machine; architectural state must track the pure interpreter.
    loop {
        let a = interp.run(501).unwrap();
        let b = fast.run(501).unwrap();
        assert_eq!(a, b);
        if a.halted {
            break;
        }
        for _ in 0..7 {
            assert_eq!(interp.step().unwrap(), fast.step().unwrap());
        }
        assert_same_state(&interp, &fast, "interleaved");
    }
}

// ---------------------------------------------------------------------------
// Proptest: random valid programs.
// ---------------------------------------------------------------------------

/// One random — but always assemblable — instruction line. Branches and
/// jumps only reference the always-emitted labels `lab0..lab3`, so
/// control flow is arbitrary (loops included); loads/stores use
/// arbitrary registers, so faults are reachable. Termination is not
/// guaranteed by construction: the instruction budget bounds every run,
/// and budget parity is exactly what the harness verifies.
fn arb_inst() -> impl Strategy<Value = String> {
    let reg = 0u8..32;
    prop_oneof![
        (
            prop_oneof![
                Just("add"),
                Just("sub"),
                Just("mul"),
                Just("div"),
                Just("rem"),
                Just("and"),
                Just("or"),
                Just("xor"),
                Just("slt"),
            ],
            reg.clone(),
            reg.clone(),
            reg.clone()
        )
            .prop_map(|(m, d, s, t)| format!("{m} r{d}, r{s}, r{t}")),
        (
            prop_oneof![
                Just("addi"),
                Just("andi"),
                Just("ori"),
                Just("xori"),
                Just("slti"),
            ],
            reg.clone(),
            reg.clone(),
            -64i64..64
        )
            .prop_map(|(m, d, s, i)| format!("{m} r{d}, r{s}, {i}")),
        (
            prop_oneof![Just("sll"), Just("srl"), Just("sra")],
            reg.clone(),
            reg.clone(),
            0u8..64
        )
            .prop_map(|(m, d, s, sh)| format!("{m} r{d}, r{s}, {sh}")),
        (reg.clone(), any::<i32>()).prop_map(|(d, i)| format!("li r{d}, {i}")),
        (reg.clone(), -8i64..8, reg.clone()).prop_map(|(d, o, s)| format!("lw r{d}, {o}(r{s})")),
        (reg.clone(), -8i64..8, reg.clone()).prop_map(|(t, o, s)| format!("sw r{t}, {o}(r{s})")),
        (
            prop_oneof![Just("beq"), Just("bne"), Just("blt"), Just("bge")],
            reg.clone(),
            reg.clone(),
            0u8..4
        )
            .prop_map(|(m, s, t, l)| format!("{m} r{s}, r{t}, lab{l}")),
        (0u8..4).prop_map(|l| format!("j lab{l}")),
        (0u8..4).prop_map(|l| format!("jal lab{l}")),
        reg.prop_map(|s| format!("jr r{s}")),
        Just("nop".to_owned()),
        Just("halt".to_owned()),
    ]
}

/// A program: four labelled blocks of random instructions, a final halt.
fn arb_program() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::collection::vec(arb_inst(), 1..12), 4..5).prop_map(|blocks| {
        let mut src = String::from(".text\nmain:\n");
        for (i, block) in blocks.iter().enumerate() {
            src.push_str(&format!("lab{i}:\n"));
            for inst in block {
                src.push_str(inst);
                src.push('\n');
            }
        }
        src.push_str("halt\n");
        src
    })
}

proptest! {
    /// The full differential contract over random programs: identical
    /// traces, identical errors (budget trips, memory faults, wild
    /// jumps), identical step counts and architectural state — under a
    /// tier configuration aggressive enough that fusion and replay fire
    /// constantly.
    #[test]
    fn random_programs_execute_identically(src in arb_program()) {
        let limits = VmLimits {
            memory_words: 1 << 16,
            max_instructions: Some(20_000),
            deadline: None,
        };
        let program = assemble(&src).expect("generated programs assemble");
        let mut interp = Vm::with_limits(program, limits).expect("loads");
        let program = assemble(&src).expect("generated programs assemble");
        let mut fast =
            Vm::with_tier_config(program, limits, Tier::Fast, aggressive()).expect("loads");
        // Two pulls: the second exercises resumption (and recording
        // continuity) after an arbitrary stop point.
        for pull in 0..2 {
            let a = interp.try_take_trace(4_000);
            let b = fast.try_take_trace(4_000);
            prop_assert_eq!(&a, &b, "pull {} diverged", pull);
            prop_assert_eq!(interp.steps(), fast.steps());
            prop_assert_eq!(interp.halted(), fast.halted());
            prop_assert_eq!(interp.pc_index(), fast.pc_index());
            prop_assert_eq!(interp.error(), fast.error());
            prop_assert_eq!(interp.limit_stop(), fast.limit_stop());
            for r in 0..32 {
                prop_assert_eq!(interp.reg(r), fast.reg(r), "r{} diverged", r);
            }
            if a.is_err() || interp.halted() {
                break;
            }
        }
    }

    /// Chunked `run` windows over random programs: stop reasons and
    /// traces agree at every window boundary.
    #[test]
    fn random_programs_agree_across_run_windows(
        src in arb_program(),
        window in 1u64..3_000,
    ) {
        let limits = VmLimits {
            memory_words: 1 << 16,
            max_instructions: Some(20_000),
            deadline: None,
        };
        let program = assemble(&src).expect("generated programs assemble");
        let mut interp = Vm::with_limits(program, limits).expect("loads");
        let program = assemble(&src).expect("generated programs assemble");
        let mut fast =
            Vm::with_tier_config(program, limits, Tier::Fast, aggressive()).expect("loads");
        loop {
            let a = interp.run(window);
            let b = fast.run(window);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(interp.steps(), fast.steps());
            prop_assert_eq!(interp.pc_index(), fast.pc_index());
            match a {
                Ok(r) if !r.halted => continue,
                _ => break,
            }
        }
        for r in 0..32 {
            prop_assert_eq!(interp.reg(r), fast.reg(r), "r{} diverged", r);
        }
    }
}
