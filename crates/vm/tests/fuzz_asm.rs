//! Structure-aware fuzzing of the assembler on the workspace proptest
//! shim: token streams built from real and near-miss assembly tokens
//! must always produce a line-numbered, excerpt-carrying error or a
//! program that executes safely under [`VmLimits`] — never a panic,
//! never a hang.
//!
//! CI runs this harness with `PROPTEST_CASES=1000` (the fuzz-smoke
//! step); locally it runs at the shim's default case count.

use std::time::Duration;

use dfcm_vm::{assemble, Vm, VmLimits};
use proptest::prelude::*;

/// One line's worth of token soup: valid mnemonics, near-misses,
/// registers (valid and out-of-range), immediates, labels, directives
/// (real and bogus), punctuation and comments.
fn arb_token() -> impl Strategy<Value = String> {
    prop_oneof![
        prop_oneof![
            Just("add"),
            Just("addi"),
            Just("sub"),
            Just("mul"),
            Just("div"),
            Just("lw"),
            Just("sw"),
            Just("li"),
            Just("la"),
            Just("beq"),
            Just("bne"),
            Just("blt"),
            Just("sll"),
            Just("slt"),
            Just("j"),
            Just("jal"),
            Just("jr"),
            Just("mov"),
            Just("nop"),
            Just("halt"),
            Just("frob"),
            Just("addd"),
            Just("l w"),
            Just("add8"),
        ]
        .prop_map(str::to_owned),
        prop_oneof![
            Just(".text"),
            Just(".data"),
            Just(".word"),
            Just(".space"),
            Just(".bogus"),
            Just("."),
        ]
        .prop_map(str::to_owned),
        (0u32..40).prop_map(|n| format!("r{n}")),
        prop_oneof![
            Just("zero"),
            Just("sp"),
            Just("ra"),
            Just("$3"),
            Just("$99")
        ]
        .prop_map(str::to_owned),
        any::<i64>().prop_map(|i| i.to_string()),
        any::<u32>().prop_map(|i| format!("{i:#x}")),
        Just("99999999999999999999".to_owned()),
        (0u32..6).prop_map(|n| format!("lab{n}")),
        (0u32..6).prop_map(|n| format!("lab{n}:")),
        (-9i64..9, 0u32..40).prop_map(|(o, r)| format!("{o}(r{r})")),
        prop_oneof![
            Just(","),
            Just(", "),
            Just("("),
            Just(")"),
            Just(":"),
            Just("; comment"),
            Just("# comment"),
            Just(""),
        ]
        .prop_map(str::to_owned),
    ]
}

/// A line: a few tokens joined by spaces.
fn arb_line() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_token(), 0..6).prop_map(|tokens| tokens.join(" "))
}

/// Limits tight enough that even a generated infinite loop terminates
/// promptly, but roomy enough for legitimate token-soup programs.
fn fuzz_limits() -> VmLimits {
    VmLimits {
        memory_words: 1 << 16,
        max_instructions: Some(20_000),
        deadline: Some(Duration::from_secs(1)),
    }
}

proptest! {
    /// Arbitrary token streams either assemble or fail with an error
    /// whose line number points into the source and whose snippet is the
    /// trimmed text of exactly that line. Programs that do assemble must
    /// execute to a clean stop under resource guards.
    #[test]
    fn token_soup_errors_are_spanned_and_programs_terminate(
        lines in prop::collection::vec(arb_line(), 0..20),
    ) {
        let source = lines.join("\n");
        match assemble(&source) {
            Err(e) => {
                let line_count = source.lines().count().max(1);
                prop_assert!(
                    e.line >= 1 && e.line <= line_count,
                    "line {} outside 1..={} for error `{}`", e.line, line_count, e.message
                );
                let expected = source.lines().nth(e.line - 1).unwrap_or("").trim();
                prop_assert_eq!(e.snippet.as_str(), expected);
                prop_assert!(!e.message.is_empty());
                prop_assert!(e.to_string().starts_with(&format!("line {}:", e.line)));
            }
            Ok(program) => {
                // Loading can fail (oversized data image) but not panic;
                // execution must stop — halt, fault, or tripped guard —
                // rather than hang the fuzzer.
                if let Ok(mut vm) = Vm::with_limits(program, fuzz_limits()) {
                    let _ = vm.try_take_trace(1_000);
                    prop_assert!(
                        vm.halted() || vm.error().is_some() || vm.steps() <= 20_000
                    );
                }
            }
        }
    }

    /// Raw character soup (not token-structured) also never panics and
    /// keeps the line-number invariant.
    #[test]
    fn character_soup_never_panics(source in "[ -~\t\n]{0,400}") {
        if let Err(e) = assemble(&source) {
            let line_count = source.lines().count().max(1);
            prop_assert!(e.line >= 1 && e.line <= line_count);
        }
    }
}
