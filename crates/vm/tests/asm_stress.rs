//! Stress and property tests for the assembler/disassembler pair and the
//! interpreter's structural invariants.

use dfcm_vm::{assemble, disassemble, Inst, Vm};
use proptest::prelude::*;

/// Strategy for a random (but well-formed) instruction that is safe to
/// disassemble and reassemble. Branch targets are chosen inside the
/// program later.
fn arb_linear_inst() -> impl Strategy<Value = Inst> {
    let r = || 0u8..32;
    prop_oneof![
        (r(), r(), r()).prop_map(|(a, b, c)| Inst::Add(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Inst::Sub(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Inst::Mul(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Inst::Div(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Inst::Rem(a, b, c)),
        (r(), r(), any::<i32>()).prop_map(|(a, b, i)| Inst::Addi(a, b, i64::from(i))),
        (r(), r(), r()).prop_map(|(a, b, c)| Inst::And(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Inst::Or(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Inst::Xor(a, b, c)),
        (r(), r(), any::<i32>()).prop_map(|(a, b, i)| Inst::Andi(a, b, i64::from(i))),
        (r(), r(), any::<i32>()).prop_map(|(a, b, i)| Inst::Ori(a, b, i64::from(i))),
        (r(), r(), 0u8..64).prop_map(|(a, b, s)| Inst::Sll(a, b, s)),
        (r(), r(), 0u8..64).prop_map(|(a, b, s)| Inst::Srl(a, b, s)),
        (r(), r(), 0u8..64).prop_map(|(a, b, s)| Inst::Sra(a, b, s)),
        (r(), r(), r()).prop_map(|(a, b, c)| Inst::Slt(a, b, c)),
        (r(), r(), any::<i32>()).prop_map(|(a, b, i)| Inst::Slti(a, b, i64::from(i))),
        (r(), any::<i32>()).prop_map(|(a, i)| Inst::Li(a, i64::from(i))),
        (r(), -64i64..64, r()).prop_map(|(a, o, b)| Inst::Lw(a, o, b)),
        (r(), -64i64..64, r()).prop_map(|(a, o, b)| Inst::Sw(a, o, b)),
        Just(Inst::Nop),
    ]
}

proptest! {
    /// Disassembling and reassembling an arbitrary straight-line program
    /// reproduces the exact instruction stream.
    #[test]
    fn linear_programs_roundtrip(insts in prop::collection::vec(arb_linear_inst(), 1..60)) {
        let program = dfcm_vm::Program {
            insts: {
                let mut v = insts.clone();
                v.push(Inst::Halt);
                v
            },
            data: vec![],
            text_labels: Default::default(),
            data_labels: Default::default(),
            entry: 0,
        };
        let text = disassemble(&program);
        let reassembled = assemble(&text).expect("disassembler output must assemble");
        prop_assert_eq!(program.insts, reassembled.insts);
    }

    /// Programs with random (valid) branches also roundtrip.
    #[test]
    fn branchy_programs_roundtrip(
        insts in prop::collection::vec(arb_linear_inst(), 4..40),
        branch_seeds in prop::collection::vec((any::<u16>(), any::<u16>()), 1..8),
    ) {
        let mut body = insts;
        let len = body.len();
        for (pos, target) in branch_seeds {
            let at = pos as usize % len;
            let to = target as usize % (len + 1);
            body[at] = Inst::Bne(1, 0, to);
        }
        body.push(Inst::Halt);
        let program = dfcm_vm::Program {
            insts: body,
            data: vec![],
            text_labels: Default::default(),
            data_labels: Default::default(),
            entry: 0,
        };
        let text = disassemble(&program);
        let reassembled = assemble(&text).expect("disassembler output must assemble");
        prop_assert_eq!(program.insts, reassembled.insts);
    }

    /// Arbitrary straight-line programs execute without panicking, and
    /// either halt or run out of budget; register 0 stays 0 throughout.
    #[test]
    fn linear_programs_execute_safely(insts in prop::collection::vec(arb_linear_inst(), 1..60)) {
        let mut body = insts;
        body.push(Inst::Halt);
        let program = dfcm_vm::Program {
            insts: body,
            data: vec![],
            text_labels: Default::default(),
            data_labels: Default::default(),
            entry: 0,
        };
        let mut vm = Vm::with_memory(program, 1 << 16);
        // Loads/stores may fault on wild addresses: that is a defined,
        // clean error, not a panic.
        let _ = vm.run(10_000);
        prop_assert_eq!(vm.reg(0), 0);
    }

    /// The assembler never panics on arbitrary input text.
    #[test]
    fn assembler_is_total_on_garbage(text in "[ -~\n]{0,300}") {
        let _ = assemble(&text);
    }

    /// `asm → encode → disasm → asm` is a fixed point for generated
    /// instruction sequences: one round of disassembly canonicalizes the
    /// text, and further rounds change nothing.
    #[test]
    fn generated_programs_reach_disasm_fixed_point(
        insts in prop::collection::vec(arb_linear_inst(), 1..60),
    ) {
        let mut body = insts;
        body.push(Inst::Halt);
        let program = dfcm_vm::Program {
            insts: body,
            data: vec![],
            text_labels: Default::default(),
            data_labels: Default::default(),
            entry: 0,
        };
        let text1 = disassemble(&program);
        let p2 = assemble(&text1).expect("disassembly must assemble");
        let text2 = disassemble(&p2);
        prop_assert_eq!(program.insts, p2.insts.clone());
        prop_assert_eq!(text1, text2);
        let p3 = assemble(&text2).expect("fixed point must keep assembling");
        prop_assert_eq!(p2.insts, p3.insts);
    }

    /// Whitespace and comment placement do not change the assembly.
    #[test]
    fn whitespace_insensitivity(pad_a in " {0,4}", pad_b in " {0,4}") {
        let compact = ".text\nmain: addi r1, r0, 7\nhalt\n";
        let padded =
            format!(".text\nmain:{pad_a}addi r1,{pad_b}r0, 7 ; c\n{pad_a}halt{pad_b}\n");
        let a = assemble(compact).unwrap();
        let b = assemble(&padded).unwrap();
        prop_assert_eq!(a.insts, b.insts);
    }
}

#[test]
fn kernel_suite_disasm_is_a_fixed_point() {
    // Over the full kernel suite: assembling a kernel, disassembling it,
    // and assembling again reproduces the exact instruction stream, and
    // the disassembly text itself is a fixed point from round one.
    for (name, src) in dfcm_vm::programs::all() {
        let original = assemble(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let text1 = disassemble(&original);
        let round1 = assemble(&text1).unwrap_or_else(|e| panic!("{name} round 1: {e}"));
        assert_eq!(original.insts, round1.insts, "{name}: instruction stream");
        let text2 = disassemble(&round1);
        assert_eq!(text1, text2, "{name}: disassembly must be a fixed point");
        let round2 = assemble(&text2).unwrap_or_else(|e| panic!("{name} round 2: {e}"));
        assert_eq!(round1.insts, round2.insts, "{name}: second round");
        assert_eq!(round1.data, round2.data, "{name}: data image");
    }
}

#[test]
fn deeply_nested_calls_do_not_overflow_host_stack() {
    // The interpreter is iterative: guest recursion depth must not consume
    // host stack. 100k-deep guest recursion via a countdown.
    let src = "
        .text
        main: li r4, 100000
              jal down
              halt
        down: slti r2, r4, 1
              bne  r2, r0, base
              sw   ra, 0(sp)
              addi sp, sp, -1
              addi r4, r4, -1
              jal  down
              addi sp, sp, 1
              lw   ra, 0(sp)
        base: jr   ra
    ";
    let mut vm = Vm::with_memory(assemble(src).unwrap(), 1 << 18);
    let result = vm.run(10_000_000).unwrap();
    assert!(result.halted);
}

#[test]
fn label_heavy_source_assembles() {
    // Hundreds of labels, all on their own lines and stacked.
    let mut src = String::from(".text\nmain:\n");
    for i in 0..300 {
        src.push_str(&format!("lab{i}:\n    addi r1, r1, 1\n"));
    }
    src.push_str("    j lab299\n");
    src.push_str("    halt\n");
    let program = assemble(&src).unwrap();
    assert_eq!(program.insts.len(), 302);
}

#[test]
fn max_registers_and_immediates() {
    let p = assemble(".text\nmain: li r31, 0x7fffffffffffffff\naddi r1, r31, -1\nhalt\n").unwrap();
    assert_eq!(p.insts[0], Inst::Li(31, i64::MAX));
    let mut vm = Vm::new(p);
    vm.run(10).unwrap();
    assert_eq!(vm.reg(1), i64::MAX - 1);
}
