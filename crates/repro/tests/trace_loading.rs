//! `--traces DIR` loading in the repro harness: intact directories load
//! exactly, damaged files are refused under `--strict` and salvaged
//! (with the intact chunks only) without it, and missing files are
//! fatal either way.

use std::io::BufReader;
use std::path::{Path, PathBuf};

use dfcm_repro::common::Options;
use dfcm_trace::suite::standard_suite;
use dfcm_trace::{salvage_trace, Trace, TraceFormat, TraceRecord, V2_CHUNK_RECORDS};

fn make_trace(records: usize, salt: u64) -> Trace {
    (0..records as u64)
        .map(|i| TraceRecord::new(0x40_0000 + 4 * (i % 257), i.wrapping_mul(salt | 1)))
        .collect()
}

/// Writes one small v2 trace per suite benchmark into a fresh dir.
fn write_suite_dir(subdir: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dfcm_repro_traces").join(subdir);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (i, spec) in standard_suite().iter().enumerate() {
        let trace = make_trace(500 + i, i as u64);
        trace
            .save_with(
                dir.join(format!("{}.trc", spec.name())),
                TraceFormat::V2 { seed: i as u64 },
            )
            .unwrap();
    }
    dir
}

fn options_for(dir: &Path, strict: bool) -> Options {
    Options {
        trace_dir: Some(dir.to_path_buf()),
        strict,
        ..Options::default()
    }
}

#[test]
fn intact_directory_loads_every_benchmark() {
    let dir = write_suite_dir("intact");
    let loaded = options_for(&dir, true).load_traces().unwrap();
    let suite = standard_suite();
    assert_eq!(loaded.len(), suite.len());
    for (i, (bench, spec)) in loaded.iter().zip(&suite).enumerate() {
        assert_eq!(bench.name, spec.name());
        assert_eq!(bench.trace, make_trace(500 + i, i as u64));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn strict_refuses_damage_that_nonstrict_salvages() {
    let dir = write_suite_dir("damaged");
    // Replace one benchmark with a multi-chunk trace and damage its
    // second half: one chunk dies, at least one chunk stays intact.
    let victim = dir.join("cc1.trc");
    let big = make_trace(2 * V2_CHUNK_RECORDS + 100, 7);
    big.save_with(&victim, TraceFormat::V2 { seed: 7 }).unwrap();
    let mut bytes = std::fs::read(&victim).unwrap();
    let at = bytes.len() * 3 / 4;
    bytes[at] ^= 0x10;
    std::fs::write(&victim, &bytes).unwrap();

    let err = options_for(&dir, true).load_traces().unwrap_err();
    assert!(err.contains("cc1.trc"), "{err}");
    assert!(err.contains("--strict"), "{err}");

    let loaded = options_for(&dir, false).load_traces().unwrap();
    let cc1 = loaded.iter().find(|b| b.name == "cc1").unwrap();
    let report = salvage_trace(BufReader::new(std::fs::File::open(&victim).unwrap())).unwrap();
    assert!(report.recovered_chunks < report.total_chunks);
    assert!(!report.recovered.is_empty());
    // The loader hands experiments exactly what salvage recovers.
    assert_eq!(cc1.trace, report.recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn intact_v3_directory_loads_every_benchmark() {
    // The loader is format-agnostic: a directory of compressed v3 traces
    // loads record-identical to the v2 one.
    let dir = std::env::temp_dir().join("dfcm_repro_traces").join("v3");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (i, spec) in standard_suite().iter().enumerate() {
        make_trace(500 + i, i as u64)
            .save_with(
                dir.join(format!("{}.trc", spec.name())),
                TraceFormat::V3 { seed: i as u64 },
            )
            .unwrap();
    }
    let loaded = options_for(&dir, true).load_traces().unwrap();
    assert_eq!(loaded.len(), standard_suite().len());
    for (i, bench) in loaded.iter().enumerate() {
        assert_eq!(bench.trace, make_trace(500 + i, i as u64));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn strict_refuses_v3_damage_that_nonstrict_salvages() {
    use dfcm_trace::V3_CHUNK_RECORDS;

    let dir = write_suite_dir("damaged_v3");
    let victim = dir.join("go.trc");
    let big = make_trace(2 * V3_CHUNK_RECORDS + 100, 7);
    big.save_with(&victim, TraceFormat::V3 { seed: 7 }).unwrap();
    let mut bytes = std::fs::read(&victim).unwrap();
    let at = bytes.len() * 3 / 4;
    bytes[at] ^= 0x10;
    std::fs::write(&victim, &bytes).unwrap();

    let err = options_for(&dir, true).load_traces().unwrap_err();
    assert!(err.contains("go.trc"), "{err}");
    assert!(err.contains("--strict"), "{err}");

    let loaded = options_for(&dir, false).load_traces().unwrap();
    let go = loaded.iter().find(|b| b.name == "go").unwrap();
    let report = salvage_trace(BufReader::new(std::fs::File::open(&victim).unwrap())).unwrap();
    assert_eq!(report.version, 3);
    assert!(report.recovered_chunks < report.total_chunks);
    assert!(!report.recovered.is_empty());
    assert_eq!(go.trace, report.recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_file_is_fatal_in_both_modes() {
    let dir = write_suite_dir("missing");
    std::fs::remove_file(dir.join("vortex.trc")).unwrap();
    assert!(options_for(&dir, true).load_traces().is_err());
    assert!(options_for(&dir, false).load_traces().is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn without_trace_dir_loading_generates_the_suite() {
    let opts = Options {
        scale: 0.004,
        ..Options::default()
    };
    let generated = opts.load_traces().unwrap();
    assert_eq!(generated, opts.traces());
    assert!(!generated.is_empty());
}
