//! Smoke tests: every experiment runs end to end at a tiny scale and
//! produces its CSV artifacts. Guards the reproduction binaries against
//! rot.

use dfcm_repro::common::Options;
use dfcm_repro::experiments;

fn tiny_options(subdir: &str) -> Options {
    let opts = Options {
        scale: 0.004,
        seed: 99,
        out_dir: std::env::temp_dir().join("dfcm_repro_smoke").join(subdir),
        ..Options::default()
    };
    let _ = std::fs::remove_dir_all(&opts.out_dir);
    opts
}

fn produced(opts: &Options, names: &[&str]) {
    for name in names {
        let path = opts.csv_path(name);
        let meta =
            std::fs::metadata(&path).unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
        assert!(meta.len() > 0, "{} is empty", path.display());
    }
    let _ = std::fs::remove_dir_all(&opts.out_dir);
}

#[test]
fn table1_runs() {
    let opts = tiny_options("table1");
    experiments::table1::run(&opts);
    produced(&opts, &["table1", "table1_vm"]);
}

#[test]
fn fig03_runs() {
    let opts = tiny_options("fig03");
    experiments::fig03::run(&opts);
    produced(&opts, &["fig03"]);
}

#[test]
fn fig04_08_runs() {
    let opts = tiny_options("fig04_08");
    experiments::fig04_08::run(&opts);
    produced(&opts, &["fig04", "fig08"]);
}

#[test]
fn fig06_09_runs() {
    let opts = tiny_options("fig06_09");
    experiments::fig06_09::run(&opts);
    produced(&opts, &["fig06_09_norm", "fig06_09_queens", "fig06_09_li"]);
}

#[test]
fn fig10_runs() {
    let opts = tiny_options("fig10");
    experiments::fig10::run_a(&opts);
    experiments::fig10::run_b(&opts);
    produced(&opts, &["fig10a", "fig10b"]);
}

#[test]
fn fig11_runs() {
    let opts = tiny_options("fig11");
    experiments::fig11::run_a(&opts);
    experiments::fig11::run_b(&opts);
    produced(&opts, &["fig11a", "fig11b"]);
}

#[test]
fn fig12_14_run() {
    let opts = tiny_options("fig12_14");
    experiments::fig12_14::run_fig12(&opts);
    experiments::fig12_14::run_fig13(&opts);
    experiments::fig12_14::run_fig14(&opts);
    produced(&opts, &["fig12", "fig13", "fig14"]);
}

#[test]
fn fig16_runs() {
    let opts = tiny_options("fig16");
    experiments::fig16::run(&opts);
    produced(&opts, &["fig16"]);
}

#[test]
fn fig17_runs() {
    let opts = tiny_options("fig17");
    experiments::fig17::run(&opts);
    produced(&opts, &["fig17"]);
}

#[test]
fn sec4_4_runs() {
    let opts = tiny_options("sec4_4");
    experiments::sec4_4::run(&opts);
    produced(&opts, &["sec4_4"]);
}

#[test]
fn tags_runs() {
    let opts = tiny_options("tags");
    experiments::tags::run(&opts);
    produced(&opts, &["tags"]);
}

#[test]
fn related_runs() {
    let opts = tiny_options("related");
    experiments::related::run(&opts);
    produced(&opts, &["related"]);
}

#[test]
fn ideal_runs() {
    let opts = tiny_options("ideal");
    experiments::ideal::run(&opts);
    produced(&opts, &["ideal"]);
}

#[test]
fn speedup_runs() {
    let opts = tiny_options("speedup");
    experiments::speedup::run(&opts);
    produced(&opts, &["speedup"]);
}

#[test]
fn vmbench_runs() {
    let opts = tiny_options("vmbench");
    experiments::vmbench::run(&opts);
    produced(&opts, &["vmbench"]);
}

#[test]
fn phases_runs() {
    let opts = tiny_options("phases");
    experiments::phases::run(&opts);
    produced(&opts, &["phases"]);
}

#[test]
fn specupdate_runs() {
    let opts = tiny_options("specupdate");
    experiments::specupdate::run(&opts);
    produced(&opts, &["specupdate"]);
}

#[test]
fn order_runs() {
    let opts = tiny_options("order");
    experiments::order::run(&opts);
    produced(&opts, &["order"]);
}
