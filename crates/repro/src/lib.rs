//! Library half of `dfcm-repro`: every experiment as a callable function,
//! so the test suite can smoke-run each table/figure reproduction.
//!
//! The binary (`src/main.rs`) is a thin argument-parsing wrapper over
//! [`experiments`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod experiments;
