//! `dfcm-repro` — regenerates every table and figure of the paper's
//! evaluation.
//!
//! ```text
//! dfcm-repro <experiment> [--seed N] [--scale F] [--full] [--json] [--out DIR]
//!                         [--threads N] [--progress] [--traces DIR] [--strict]
//!                         [--obs DIR]
//!
//! experiments:
//!   table1   benchmark descriptions and trace statistics
//!   fig3     LVP / stride / FCM accuracy vs size
//!   fig4_8   worked example: stride pattern in FCM vs DFCM level-2 table
//!   fig6_9   stride accesses per level-2 entry (norm, queens, li)
//!   fig10a   FCM vs DFCM accuracy across level-2 sizes
//!   fig10b   per-benchmark FCM vs DFCM at 2^16/2^12
//!   fig11a   DFCM accuracy vs total size
//!   fig11b   FCM and DFCM Pareto fronts
//!   fig12    accuracy per aliasing class (FCM)
//!   fig13    aliasing-class fractions, all predictions
//!   fig14    aliasing-class fractions, mispredictions
//!   fig16    hybrids with a perfect meta-predictor
//!   fig17    delayed update
//!   sec4_4   partial-width difference storage
//!   tags     extension: §4.2's suggested tagged confidence estimator
//!   related  §5 comparison: dynamic classification and last-n predictors
//!   ideal    extension: accuracy loss vs collision-free oracle tables
//!   speedup  extension: first-order speculation benefit model
//!   vmbench  extension: FCM vs DFCM on the real VM kernels
//!   phases   extension: sensitivity to program phase changes
//!   specupdate extension: speculative history update under delay
//!   order    ablation: history order via the FS R-k hash family
//!   all      everything above
//!
//! options:
//!   --seed N    workload seed (default 12345)
//!   --scale F   trace length scale; 1.0 = paper counts / 100 (default 0.1)
//!   --full      extend table sweeps to the paper's 2^18 and 2^20
//!   --json      also write a JSON copy of every table
//!   --out DIR   CSV output directory (default results/)
//!   --threads N engine worker threads; 0 = one per hardware thread (default 0)
//!   --progress  print engine task progress on stderr
//!   --resume    checkpoint completed tasks under `<out>/checkpoints/` and
//!               skip tasks a previous interrupted run already completed;
//!               the merged output is byte-identical to an uninterrupted run
//!   --traces DIR  load suite traces from `<DIR>/<benchmark>.trc` (as written
//!               by `dfcm-tools gen`) instead of regenerating them; damaged
//!               files are salvaged chunk-by-chunk with a warning
//!   --strict    with --traces: refuse any damaged or truncated trace file
//!               outright instead of salvaging it
//!   --obs DIR   record observability (engine spans, metrics, aliasing
//!               counters) and write events.jsonl, trace.json (Perfetto)
//!               and metrics.prom into DIR at the end of the run; render
//!               with `dfcm-tools obs summarize DIR`
//!
//! Engine-backed experiments (table1, fig3, fig10a/b, fig11a/b) also write
//! run metrics as JSON lines under `<out>/metrics/<experiment>.jsonl`.
//! ```

use std::process::ExitCode;

use dfcm_repro::common::Options;
use dfcm_repro::experiments;

const USAGE: &str = "usage: dfcm-repro <table1|fig3|fig4_8|fig6_9|fig10a|fig10b|fig11a|fig11b|fig12|fig13|fig14|fig16|fig17|sec4_4|tags|related|ideal|speedup|vmbench|phases|specupdate|order|all> [--seed N] [--scale F] [--full] [--json] [--out DIR] [--threads N] [--progress] [--resume] [--traces DIR] [--strict] [--obs DIR] [--vm-tier fast|interp]";

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                opts.scale = v.parse().map_err(|_| format!("bad scale `{v}`"))?;
                if opts.scale <= 0.0 {
                    return Err("scale must be positive".into());
                }
            }
            "--full" => opts.full = true,
            "--json" => opts.json = true,
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                opts.out_dir = v.into();
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                opts.threads = v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
            }
            "--progress" => opts.progress = true,
            "--resume" => opts.resume = true,
            "--traces" => {
                let v = it.next().ok_or("--traces needs a directory")?;
                opts.trace_dir = Some(v.into());
            }
            "--strict" => opts.strict = true,
            "--obs" => {
                let v = it.next().ok_or("--obs needs a directory")?;
                opts.obs_dir = Some(v.into());
                opts.obs = dfcm_obs::Obs::enabled();
            }
            "--vm-tier" => {
                let v = it.next().ok_or("--vm-tier needs a value")?;
                opts.vm_tier = v.parse()?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn dispatch(name: &str, opts: &Options) -> bool {
    match name {
        "table1" => experiments::table1::run(opts),
        "fig3" => experiments::fig03::run(opts),
        "fig4_8" => experiments::fig04_08::run(opts),
        "fig6_9" => experiments::fig06_09::run(opts),
        "fig10a" => experiments::fig10::run_a(opts),
        "fig10b" => experiments::fig10::run_b(opts),
        "fig11a" => experiments::fig11::run_a(opts),
        "fig11b" => experiments::fig11::run_b(opts),
        "fig12" => experiments::fig12_14::run_fig12(opts),
        "fig13" => experiments::fig12_14::run_fig13(opts),
        "fig14" => experiments::fig12_14::run_fig14(opts),
        "fig16" => experiments::fig16::run(opts),
        "fig17" => experiments::fig17::run(opts),
        "sec4_4" => experiments::sec4_4::run(opts),
        "tags" => experiments::tags::run(opts),
        "related" => experiments::related::run(opts),
        "ideal" => experiments::ideal::run(opts),
        "speedup" => experiments::speedup::run(opts),
        "vmbench" => experiments::vmbench::run(opts),
        "phases" => experiments::phases::run(opts),
        "specupdate" => experiments::specupdate::run(opts),
        "order" => experiments::order::run(opts),
        "all" => {
            for exp in [
                "table1",
                "fig3",
                "fig4_8",
                "fig6_9",
                "fig10a",
                "fig10b",
                "fig11a",
                "fig11b",
                "fig12",
                "fig13",
                "fig14",
                "fig16",
                "fig17",
                "sec4_4",
                "tags",
                "related",
                "ideal",
                "speedup",
                "vmbench",
                "phases",
                "specupdate",
            ] {
                dispatch(exp, opts);
            }
        }
        _ => return false,
    }
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((name, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "dfcm-repro: seed={} scale={} sweeps up to L2=2^{}  (CSV -> {})",
        opts.seed,
        opts.scale,
        if opts.full { 20 } else { 16 },
        opts.out_dir.display()
    );
    if dispatch(name, &opts) {
        opts.emit_obs();
        ExitCode::SUCCESS
    } else {
        eprintln!("error: unknown experiment `{name}`");
        eprintln!("{USAGE}");
        ExitCode::FAILURE
    }
}
