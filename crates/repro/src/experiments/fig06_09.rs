//! Figures 6 and 9: number of accesses to each level-2 entry that are
//! part of a stride pattern, sorted descending.
//!
//! The paper instruments an FCM (Figure 6) and a DFCM (Figure 9) with
//! 64K-entry level-1 tables and 4096-entry level-2 tables, plus a
//! 64K-entry stride predictor acting as the stride-pattern detector.
//! Workloads: the `norm` kernel of Figure 5 and the `li` benchmark. We run
//! `norm` on the VM (a faithful translation) and `queens` as the
//! li-equivalent real program, plus the synthetic `li` profile.

use dfcm::{DfcmPredictor, FcmPredictor, L2Indexed, StrideOccupancyProfiler, ValuePredictor};
use dfcm_sim::report::TextTable;
use dfcm_trace::suite::standard_suite;
use dfcm_trace::{Trace, TraceSource};
use dfcm_vm::{assemble, programs, Vm};

use crate::common::{banner, Options};

const L1_BITS: u32 = 16;
const L2_BITS: u32 = 12;
const DETECTOR_BITS: u32 = 16;

fn profile<P: ValuePredictor + L2Indexed>(predictor: P, trace: &Trace) -> Vec<u64> {
    let mut profiler = StrideOccupancyProfiler::new(predictor, DETECTOR_BITS);
    for r in trace {
        profiler.access(r.pc, r.value);
    }
    profiler.stats().sorted_desc().to_vec()
}

fn vm_trace(name: &str, max_records: usize) -> Trace {
    let src = programs::by_name(name).expect("kernel exists");
    let mut vm = Vm::new(assemble(src).expect("assembles"));
    vm.take_trace(max_records)
}

fn run_workload(label: &str, trace: &Trace, opts: &Options) {
    let fcm = profile(
        FcmPredictor::builder()
            .l1_bits(L1_BITS)
            .l2_bits(L2_BITS)
            .build()
            .expect("valid"),
        trace,
    );
    let dfcm = profile(
        DfcmPredictor::builder()
            .l1_bits(L1_BITS)
            .l2_bits(L2_BITS)
            .build()
            .expect("valid"),
        trace,
    );

    println!("Workload `{label}` ({} records):", trace.len());
    let mut summary = TextTable::new(vec!["metric", "FCM", "DFCM"]);
    for threshold in [100u64, 1000] {
        let f = fcm.iter().filter(|&&c| c >= threshold).count();
        let d = dfcm.iter().filter(|&&c| c >= threshold).count();
        summary.row(vec![
            format!("entries with >= {threshold} stride accesses"),
            f.to_string(),
            d.to_string(),
        ]);
    }
    summary.row(vec![
        "total stride accesses".into(),
        fcm.iter().sum::<u64>().to_string(),
        dfcm.iter().sum::<u64>().to_string(),
    ]);
    print!("{}", summary.render());

    // The sorted series itself (the plotted curve), decimated for print,
    // full in the CSV.
    let mut curve = TextTable::new(vec!["rank", "fcm_accesses", "dfcm_accesses"]);
    for rank in 0..fcm.len() {
        curve.row(vec![
            rank.to_string(),
            fcm[rank].to_string(),
            dfcm[rank].to_string(),
        ]);
    }
    opts.emit(&curve, &format!("fig06_09_{label}"));
    print!("  head of sorted curve:");
    for rank in [0usize, 1, 3, 7, 15, 31, 63, 127, 511, 2047, 4095] {
        if rank < fcm.len() {
            print!("  r{rank}: {}/{}", fcm[rank], dfcm[rank]);
        }
    }
    println!();
    println!();
}

/// Runs the Figure 6 / Figure 9 reproduction.
pub fn run(opts: &Options) {
    banner(
        "Figures 6 and 9: stride accesses per level-2 entry (sorted)",
        "L1 = 2^16 entries, L2 = 4096 entries, 64K-entry stride detector. \
         Counts how many accesses to each level-2 entry carry stride-predictable values.",
    );

    // VM trace lengths follow --scale (default 0.1 -> 1.5 M records).
    let vm_records = ((opts.scale * 15_000_000.0) as usize).clamp(50_000, 5_000_000);
    run_workload("norm", &vm_trace("norm", vm_records), opts);
    run_workload("queens", &vm_trace("queens", vm_records), opts);

    let li = standard_suite()
        .into_iter()
        .find(|b| b.name() == "li")
        .expect("li in suite")
        .trace(opts.seed, opts.scale);
    run_workload("li", &li.trace, opts);

    println!(
        "Check (paper): the DFCM stores stride patterns in far fewer level-2 entries \
         (norm: >100 entries above 100 accesses for FCM vs ~12 for DFCM; \
         li: 3801 vs 582 entries above 1000 accesses, a ~7x reduction)."
    );
}
