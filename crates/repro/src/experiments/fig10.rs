//! Figure 10: prediction accuracy of the FCM vs. the DFCM.
//!
//! (a) Weighted suite accuracy for a 2^16-entry level-1 table across
//! level-2 sizes — the DFCM's improvement grows as the level-2 table
//! shrinks (paper: +8% at 2^20 up to +33% at small sizes).
//! (b) Per-benchmark accuracies at a 2^12-entry level-2 table (paper:
//! +19% average, minimum +8% on m88ksim, maximum +46% on ijpeg).

use dfcm::{DfcmPredictor, FcmPredictor};
use dfcm_sim::chart::{ScatterChart, Series};
use dfcm_sim::report::{fmt_accuracy, TextTable};
use dfcm_sim::{run_suite_engine_ft, sweep_engine_ft};

use crate::common::{banner, Options};

/// Runs the Figure 10(a) reproduction.
pub fn run_a(opts: &Options) {
    banner(
        "Figure 10(a): FCM vs DFCM accuracy, L1 = 2^16",
        "Weighted suite accuracy per level-2 size.",
    );
    let traces = opts.traces();
    let mut table = TextTable::new(vec!["l2", "FCM", "DFCM", "gain"]);
    let mut fcm_curve = Vec::new();
    let mut dfcm_curve = Vec::new();
    let l2s = opts.l2_sweep();
    let engine = opts.engine_config();
    let (fcm_points, mut metrics) = sweep_engine_ft(
        &l2s,
        |&l2| {
            FcmPredictor::builder()
                .l1_bits(16)
                .l2_bits(l2)
                .build()
                .expect("valid")
        },
        &traces,
        &engine,
        opts.checkpoint_for("fig10a-fcm").as_deref(),
    )
    .unwrap_or_else(|e| panic!("fig10a checkpoint: {e}"));
    let (dfcm_points, dfcm_metrics) = sweep_engine_ft(
        &l2s,
        |&l2| {
            DfcmPredictor::builder()
                .l1_bits(16)
                .l2_bits(l2)
                .build()
                .expect("valid")
        },
        &traces,
        &engine,
        opts.checkpoint_for("fig10a-dfcm").as_deref(),
    )
    .unwrap_or_else(|e| panic!("fig10a checkpoint: {e}"));
    metrics.merge(dfcm_metrics);
    Options::warn_failures(&metrics, "fig10a");
    for (f, d) in fcm_points.iter().zip(&dfcm_points) {
        let l2 = f.config;
        let (fcm, dfcm) = (f.accuracy(), d.accuracy());
        table.row(vec![
            format!("2^{l2}"),
            fmt_accuracy(fcm),
            fmt_accuracy(dfcm),
            format!("{:+.1}%", 100.0 * (dfcm / fcm - 1.0)),
        ]);
        fcm_curve.push((f64::from(1u32 << l2.min(31)), fcm));
        dfcm_curve.push((f64::from(1u32 << l2.min(31)), dfcm));
    }
    opts.emit_metrics(&metrics, "fig10a");
    print!("{}", table.render());
    println!();
    print!(
        "{}",
        ScatterChart::new(56, 12)
            .log_x()
            .series(Series::new("fcm", fcm_curve))
            .series(Series::new("dfcm", dfcm_curve))
            .render()
    );
    opts.emit(&table, "fig10a");
    println!();
    println!(
        "Check (paper): DFCM above FCM everywhere; the gain grows as the level-2 \
         table shrinks (paper: +8% at 2^20, +19% at 2^12, up to +33%)."
    );
}

/// Runs the Figure 10(b) reproduction.
pub fn run_b(opts: &Options) {
    banner(
        "Figure 10(b): per-benchmark accuracy, L1 = 2^16, L2 = 2^12",
        "",
    );
    let traces = opts.traces();
    let engine = opts.engine_config();
    let (fcm, mut metrics) = run_suite_engine_ft(
        || {
            FcmPredictor::builder()
                .l1_bits(16)
                .l2_bits(12)
                .build()
                .expect("valid")
        },
        &traces,
        &engine,
        opts.checkpoint_for("fig10b-fcm").as_deref(),
    )
    .unwrap_or_else(|e| panic!("fig10b checkpoint: {e}"));
    let (dfcm, dfcm_metrics) = run_suite_engine_ft(
        || {
            DfcmPredictor::builder()
                .l1_bits(16)
                .l2_bits(12)
                .build()
                .expect("valid")
        },
        &traces,
        &engine,
        opts.checkpoint_for("fig10b-dfcm").as_deref(),
    )
    .unwrap_or_else(|e| panic!("fig10b checkpoint: {e}"));
    metrics.merge(dfcm_metrics);
    Options::warn_failures(&metrics, "fig10b");
    opts.emit_metrics(&metrics, "fig10b");
    let mut table = TextTable::new(vec!["benchmark", "FCM", "DFCM", "gain"]);
    let mut bars = dfcm_sim::chart::BarChart::new(46).max(1.0);
    for b in &fcm.benchmarks {
        let fa = b.stats.accuracy();
        let da = dfcm.benchmark_accuracy(b.name).expect("same suite");
        table.row(vec![
            b.name.to_owned(),
            fmt_accuracy(fa),
            fmt_accuracy(da),
            format!("{:+.1}%", 100.0 * (da / fa - 1.0)),
        ]);
        bars.bar(format!("{} fcm", b.name), fa);
        bars.bar(format!("{} dfcm", b.name), da);
    }
    let (fa, da) = (fcm.weighted_accuracy(), dfcm.weighted_accuracy());
    table.row(vec![
        "average".into(),
        fmt_accuracy(fa),
        fmt_accuracy(da),
        format!("{:+.1}%", 100.0 * (da / fa - 1.0)),
    ]);
    print!("{}", table.render());
    println!();
    print!("{}", bars.render());
    opts.emit(&table, "fig10b");
    println!();
    println!(
        "Check (paper): average +19% (.62 -> .73); minimum gain on m88ksim (+8%), \
         maximum on ijpeg (+46%), all others +13..37%."
    );
}
