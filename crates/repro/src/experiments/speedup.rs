//! Extension experiment: first-order speculation benefit.
//!
//! The paper motivates value prediction with ILP but evaluates accuracy
//! only. This experiment closes the loop with the standard first-order
//! model: a correct issued prediction saves `benefit` cycles, a wrong one
//! costs `penalty` cycles. It compares unconditional issue (FCM, DFCM)
//! against the §4.2 tagged-DFCM confidence estimator across penalty
//! regimes — showing both why the DFCM's accuracy advantage matters and
//! why confidence estimation becomes essential as squash costs grow.

use dfcm::{DfcmPredictor, FcmPredictor, TaggedDfcmPredictor};
use dfcm_sim::report::{fmt_accuracy, TextTable};
use dfcm_sim::speculation::{
    speculate_always, speculate_confident, SpeculationModel, SpeculationOutcome,
};
use dfcm_sim::ConfidenceStats;
use dfcm_trace::{BenchmarkTrace, Trace};

use crate::common::{banner, Options};

/// Aggregates a per-trace speculation evaluation over the suite.
fn over_suite<F>(traces: &[BenchmarkTrace], mut run_one: F) -> (ConfidenceStats, f64)
where
    F: FnMut(&Trace) -> SpeculationOutcome,
{
    let mut total = ConfidenceStats::default();
    let mut net = 0.0;
    for bench in traces {
        let out = run_one(&bench.trace);
        total.all.merge(out.stats.all);
        total.issued.merge(out.stats.issued);
        net += out.net_cycles;
    }
    (total, net)
}

/// Runs the speculation-benefit analysis.
pub fn run(opts: &Options) {
    banner(
        "Extension: first-order speculation benefit (2^16/2^12)",
        "Net cycles saved per 1000 predicted instructions; benefit = 1 cycle per hit.",
    );
    let traces = opts.traces();
    let mut table = TextTable::new(vec![
        "penalty",
        "issue policy",
        "coverage",
        "issued acc",
        "net/1000",
    ]);
    for penalty in [0.0f64, 3.0, 10.0, 30.0] {
        let model = SpeculationModel {
            benefit: 1.0,
            penalty,
        };
        let policies: Vec<(&str, (ConfidenceStats, f64))> = vec![
            (
                "fcm, always",
                over_suite(&traces, |trace| {
                    let mut p = FcmPredictor::builder()
                        .l1_bits(16)
                        .l2_bits(12)
                        .build()
                        .expect("valid");
                    speculate_always(model, &mut p, trace)
                }),
            ),
            (
                "dfcm, always",
                over_suite(&traces, |trace| {
                    let mut p = DfcmPredictor::builder()
                        .l1_bits(16)
                        .l2_bits(12)
                        .build()
                        .expect("valid");
                    speculate_always(model, &mut p, trace)
                }),
            ),
            (
                "dfcm+tag, confident",
                over_suite(&traces, |trace| {
                    let mut p = TaggedDfcmPredictor::builder()
                        .l1_bits(16)
                        .l2_bits(12)
                        .build()
                        .expect("valid");
                    speculate_confident(model, &mut p, trace)
                }),
            ),
        ];
        for (label, (stats, net)) in policies {
            table.row(vec![
                format!("{penalty:.0}"),
                label.to_owned(),
                fmt_accuracy(stats.coverage()),
                fmt_accuracy(stats.issued_accuracy()),
                format!("{:+.1}", 1000.0 * net / stats.all.predictions.max(1) as f64),
            ]);
        }
    }
    print!("{}", table.render());
    opts.emit(&table, "speedup");
    println!();
    println!(
        "Check: with no squash cost, wide issue wins; as the penalty grows, \
         unconditional issue goes negative while the confidence-gated DFCM \
         stays profitable (break-even issued accuracy = penalty/(1+penalty))."
    );
}
