//! Figure 3: accuracy vs. size for the last-value, stride and FCM
//! predictors.
//!
//! The paper plots, on one size/accuracy chart: LVP and stride predictors
//! with 2^6..2^16 entries, and one FCM curve per level-1 size
//! (2^0..2^16), each swept over level-2 sizes 2^8..2^20. The headline
//! shape: FCM is the most accurate predictor for all but the smallest
//! budgets, but needs huge level-2 tables; accuracy still improves from
//! 2^18 to 2^20 entries.

use dfcm::{FcmPredictor, LastValuePredictor, StridePredictor};
use dfcm_sim::report::{fmt_accuracy, fmt_kbits, TextTable};
use dfcm_sim::sweep_engine_ft;

use crate::common::{banner, Options};

/// Runs the Figure 3 reproduction.
pub fn run(opts: &Options) {
    banner(
        "Figure 3: LVP / stride / FCM accuracy vs size",
        "Each FCM curve fixes the level-1 size and sweeps the level-2 size.",
    );
    let traces = opts.traces();
    let mut table = TextTable::new(vec!["predictor", "l1", "l2", "kbit", "accuracy"]);

    let entry_sweep: Vec<u32> = (6..=16).step_by(2).collect();
    let engine = opts.engine_config();
    let (points, mut metrics) = sweep_engine_ft(
        &entry_sweep,
        |&bits| LastValuePredictor::new(bits),
        &traces,
        &engine,
        opts.checkpoint_for("fig03-lvp").as_deref(),
    )
    .unwrap_or_else(|e| panic!("fig03 checkpoint: {e}"));
    for point in points {
        table.row(vec![
            "lvp".into(),
            format!("2^{}", point.config),
            "-".into(),
            fmt_kbits(point.kbits()),
            fmt_accuracy(point.accuracy()),
        ]);
    }
    let (points, stride_metrics) = sweep_engine_ft(
        &entry_sweep,
        |&bits| StridePredictor::new(bits),
        &traces,
        &engine,
        opts.checkpoint_for("fig03-stride").as_deref(),
    )
    .unwrap_or_else(|e| panic!("fig03 checkpoint: {e}"));
    metrics.merge(stride_metrics);
    for point in points {
        table.row(vec![
            "stride".into(),
            format!("2^{}", point.config),
            "-".into(),
            fmt_kbits(point.kbits()),
            fmt_accuracy(point.accuracy()),
        ]);
    }

    let l1_sweep: Vec<u32> = vec![0, 4, 6, 8, 10, 12, 14, 16];
    let l2_sweep = opts.l2_sweep();
    let grid: Vec<(u32, u32)> = l1_sweep
        .iter()
        .flat_map(|&l1| l2_sweep.iter().map(move |&l2| (l1, l2)))
        .collect();
    let (points, fcm_metrics) = sweep_engine_ft(
        &grid,
        |&(l1, l2)| {
            FcmPredictor::builder()
                .l1_bits(l1)
                .l2_bits(l2)
                .build()
                .expect("valid")
        },
        &traces,
        &engine,
        opts.checkpoint_for("fig03-fcm").as_deref(),
    )
    .unwrap_or_else(|e| panic!("fig03 checkpoint: {e}"));
    metrics.merge(fcm_metrics);
    for point in points {
        let (l1, l2) = point.config;
        table.row(vec![
            "fcm".into(),
            format!("2^{l1}"),
            format!("2^{l2}"),
            fmt_kbits(point.kbits()),
            fmt_accuracy(point.accuracy()),
        ]);
    }

    Options::warn_failures(&metrics, "fig03");
    print!("{}", table.render());
    opts.emit(&table, "fig03");
    opts.emit_metrics(&metrics, "fig03");
    println!();
    println!(
        "Check (paper): FCM beats LVP and stride for all but the smallest sizes; \
         accuracy keeps rising with the level-2 table; level-1 saturates around 2^14."
    );
}
