//! Table 1: description of the benchmarks.
//!
//! The paper's Table 1 lists each SPECint95 benchmark with its input and
//! the number of predicted instructions. Our analogue lists the synthetic
//! stand-ins (with their block mixes and measured trace statistics) and
//! the VM kernels.

use dfcm_sim::checkpoint::{decode_rows, encode_rows, CheckpointLog};
use dfcm_sim::engine::{run_tasks_resumable, TaskError, TaskOutput};
use dfcm_sim::report::TextTable;
use dfcm_trace::stats::TraceStats;
use dfcm_trace::suite::standard_suite;
use dfcm_vm::{assemble, programs, Vm, VmLimits};

use crate::common::{banner, Options};

/// Runs one table half as a checkpointable engine batch: each task
/// produces one row of cells, completed rows stream to the experiment's
/// checkpoint when `--resume` is set, and failed tasks are warned about
/// and omitted rather than aborting the table.
fn row_batch<F>(
    opts: &Options,
    name: &str,
    labels: Vec<String>,
    row_for: F,
) -> (Vec<Vec<String>>, dfcm_sim::EngineReport)
where
    F: Fn(usize) -> Result<TaskOutput<Vec<String>>, TaskError> + Sync,
{
    let checkpoint = opts.checkpoint_for(name);
    let (log, raw_seeded) = CheckpointLog::load_seeded(checkpoint.as_deref(), &labels)
        .unwrap_or_else(|e| panic!("{name} checkpoint: {e}"));
    let seeded = if log.is_none() {
        Vec::new()
    } else {
        raw_seeded
            .into_iter()
            .map(|slot| {
                slot.and_then(|(payload, records)| {
                    decode_rows(&payload).map(|rows| (rows, records))
                })
            })
            .collect()
    };
    let (rows, report) = run_tasks_resumable(
        labels,
        row_for,
        &opts.engine_config(),
        seeded,
        |index, label, records, row: &Vec<String>| {
            if let Some(log) = &log {
                if let Err(e) = log.append(index, label, records, &encode_rows(row)) {
                    eprintln!("[dfcm-repro] {name}: checkpoint append failed for {label}: {e}");
                }
            }
        },
    );
    Options::warn_failures(&report, name);
    (rows.into_iter().flatten().collect(), report)
}

/// Runs the Table 1 reproduction.
///
/// Trace generation and statistics are independent per benchmark, so both
/// halves run as engine task batches; the metrics land in
/// `metrics/table1.jsonl`.
pub fn run(opts: &Options) {
    banner(
        "Table 1: benchmark descriptions",
        "Synthetic SPECint95 stand-ins (paper: SimpleScalar traces, counts in M; ours scaled by --scale) \
         plus the VM kernels used for Figures 6 and 9.",
    );

    let specs = standard_suite();
    // With `--traces DIR` the whole suite loads (and integrity-checks)
    // up front, so a damaged file fails the experiment before any row
    // is computed; otherwise each task generates its own trace.
    let loaded = opts.trace_dir.as_ref().map(|_| opts.traces());
    let labels = specs.iter().map(|s| s.name().to_owned()).collect();
    let (rows, mut metrics) = row_batch(opts, "table1-suite", labels, |i| {
        let spec = &specs[i];
        let trace = match &loaded {
            Some(suite) => suite[i].clone(),
            None => spec.trace(opts.seed, opts.scale),
        };
        let stats = TraceStats::measure(&trace.trace);
        let paper_m = spec.predictions(1.0) as f64 / 10_000.0;
        Ok(TaskOutput {
            value: vec![
                spec.name().to_owned(),
                stats.records.to_string(),
                format!("{paper_m:.0}"),
                stats.static_instructions.to_string(),
                format!("{:.2}", stats.last_value_fraction),
                format!("{:.2}", stats.stride_fraction),
                format!("{:.2}", stats.reuse_fraction),
            ],
            records: stats.records as u64,
        })
    });
    let mut table = TextTable::new(vec![
        "benchmark",
        "predictions",
        "paper (M)",
        "statics",
        "lv-frac",
        "stride-frac",
        "reuse-frac",
    ]);
    for row in rows {
        table.row(row);
    }
    print!("{}", table.render());
    opts.emit(&table, "table1");

    println!();
    println!("VM kernels (trace-generating real programs):");
    let kernels = programs::all();
    let labels = kernels.iter().map(|(name, _)| (*name).to_owned()).collect();
    let (rows, vm_metrics) = row_batch(opts, "table1-vm", labels, |i| {
        let (name, src) = kernels[i];
        // Budgeted so a kernel that regresses into an infinite loop
        // fails its task instead of hanging the sweep.
        let limits = VmLimits {
            max_instructions: Some(1_000_000_000),
            ..VmLimits::default()
        };
        let mut vm = Vm::with_limits(assemble(src).expect("bundled kernel assembles"), limits)?;
        let trace = vm
            .try_take_trace(2_000_000)
            .map_err(|e| TaskError::Permanent(format!("{name} faulted: {e}")))?;
        let stats = TraceStats::measure(&trace);
        Ok(TaskOutput {
            value: vec![
                name.to_owned(),
                stats.records.to_string(),
                stats.static_instructions.to_string(),
                format!("{:.2}", stats.last_value_fraction),
                format!("{:.2}", stats.stride_fraction),
            ],
            records: stats.records as u64,
        })
    });
    metrics.merge(vm_metrics);
    opts.emit_metrics(&metrics, "table1");
    let mut vm_table = TextTable::new(vec![
        "kernel",
        "records",
        "statics",
        "lv-frac",
        "stride-frac",
    ]);
    for row in rows {
        vm_table.row(row);
    }
    print!("{}", vm_table.render());
    opts.emit(&vm_table, "table1_vm");
}
