//! Table 1: description of the benchmarks.
//!
//! The paper's Table 1 lists each SPECint95 benchmark with its input and
//! the number of predicted instructions. Our analogue lists the synthetic
//! stand-ins (with their block mixes and measured trace statistics) and
//! the VM kernels.

use dfcm_sim::engine::{run_tasks, TaskOutput};
use dfcm_sim::report::TextTable;
use dfcm_trace::stats::TraceStats;
use dfcm_trace::suite::standard_suite;
use dfcm_trace::TraceSource;
use dfcm_vm::{assemble, programs, Vm};

use crate::common::{banner, Options};

/// Runs the Table 1 reproduction.
///
/// Trace generation and statistics are independent per benchmark, so both
/// halves run as engine task batches; the metrics land in
/// `metrics/table1.jsonl`.
pub fn run(opts: &Options) {
    banner(
        "Table 1: benchmark descriptions",
        "Synthetic SPECint95 stand-ins (paper: SimpleScalar traces, counts in M; ours scaled by --scale) \
         plus the VM kernels used for Figures 6 and 9.",
    );

    let engine = opts.engine_config();
    let specs = standard_suite();
    let labels = specs.iter().map(|s| s.name().to_owned()).collect();
    let (rows, mut metrics) = run_tasks(
        labels,
        |i| {
            let spec = &specs[i];
            let trace = spec.trace(opts.seed, opts.scale);
            let stats = TraceStats::measure(&trace.trace);
            let paper_m = spec.predictions(1.0) as f64 / 10_000.0;
            TaskOutput {
                value: vec![
                    spec.name().to_owned(),
                    stats.records.to_string(),
                    format!("{paper_m:.0}"),
                    stats.static_instructions.to_string(),
                    format!("{:.2}", stats.last_value_fraction),
                    format!("{:.2}", stats.stride_fraction),
                    format!("{:.2}", stats.reuse_fraction),
                ],
                records: stats.records as u64,
            }
        },
        &engine,
    );
    let mut table = TextTable::new(vec![
        "benchmark",
        "predictions",
        "paper (M)",
        "statics",
        "lv-frac",
        "stride-frac",
        "reuse-frac",
    ]);
    for row in rows {
        table.row(row);
    }
    print!("{}", table.render());
    opts.emit(&table, "table1");

    println!();
    println!("VM kernels (trace-generating real programs):");
    let kernels = programs::all();
    let labels = kernels.iter().map(|(name, _)| (*name).to_owned()).collect();
    let (rows, vm_metrics) = run_tasks(
        labels,
        |i| {
            let (name, src) = kernels[i];
            let mut vm = Vm::new(assemble(src).expect("bundled kernel assembles"));
            let trace = vm.take_trace(2_000_000);
            let stats = TraceStats::measure(&trace);
            TaskOutput {
                value: vec![
                    name.to_owned(),
                    stats.records.to_string(),
                    stats.static_instructions.to_string(),
                    format!("{:.2}", stats.last_value_fraction),
                    format!("{:.2}", stats.stride_fraction),
                ],
                records: stats.records as u64,
            }
        },
        &engine,
    );
    metrics.merge(vm_metrics);
    opts.emit_metrics(&metrics, "table1");
    let mut vm_table = TextTable::new(vec![
        "kernel",
        "records",
        "statics",
        "lv-frac",
        "stride-frac",
    ]);
    for row in rows {
        vm_table.row(row);
    }
    print!("{}", vm_table.render());
    opts.emit(&vm_table, "table1_vm");
}
