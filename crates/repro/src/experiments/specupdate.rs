//! Extension experiment: speculative history update under delay.
//!
//! Figure 17 shows both predictors degrading badly under delayed update —
//! the paper leaves it at that ("the overall behaviour is the same for
//! both techniques"). The standard remedy in later value-prediction work
//! is to update the *history* speculatively at prediction time and repair
//! on a value misprediction. This experiment reruns the Figure 17 sweep
//! with [`SpeculativeDfcm`] added, showing how much
//! of the loss speculative histories recover.

use dfcm::{DelayedUpdate, DfcmPredictor, SpeculativeDfcm};
use dfcm_sim::report::{fmt_accuracy, TextTable};
use dfcm_sim::run_suite;

use crate::common::{banner, Options};

use super::fig17::DELAYS;

/// Runs the speculative-update analysis.
pub fn run(opts: &Options) {
    banner(
        "Extension: speculative history update under delay (2^16/2^12)",
        "Stale = Figure 17's delayed update; speculative = fetch-side history \
         advanced with the prediction, repaired on misprediction.",
    );
    let traces = opts.traces();
    let mut table = TextTable::new(vec!["delay", "DFCM stale", "DFCM speculative", "recovered"]);
    let mut baseline = None;
    for d in DELAYS {
        let stale = run_suite(
            || {
                DelayedUpdate::new(
                    DfcmPredictor::builder()
                        .l1_bits(16)
                        .l2_bits(12)
                        .build()
                        .expect("valid"),
                    d,
                )
            },
            &traces,
        )
        .weighted_accuracy();
        let speculative = run_suite(
            || {
                SpeculativeDfcm::builder()
                    .l1_bits(16)
                    .l2_bits(12)
                    .delay(d)
                    .build()
                    .expect("valid")
            },
            &traces,
        )
        .weighted_accuracy();
        let base = *baseline.get_or_insert(stale.max(speculative));
        let lost = base - stale;
        let recovered = if lost > 1e-9 {
            format!("{:.0}%", 100.0 * (speculative - stale) / lost)
        } else {
            "-".to_owned()
        };
        table.row(vec![
            d.to_string(),
            fmt_accuracy(stale),
            fmt_accuracy(speculative),
            recovered,
        ]);
    }
    print!("{}", table.render());
    opts.emit(&table, "specupdate");
    println!();
    println!(
        "Check: plain delayed update bleeds accuracy with distance (Figure 17); \
         speculative histories recover most of the loss at every delay, because \
         in-flight stride and context chains keep advancing on predicted values."
    );
}
