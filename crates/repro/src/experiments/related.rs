//! Related-work comparison (§5): the DFCM vs. the alternative efficiency
//! schemes the paper discusses.
//!
//! * **Dynamic classification** (Rychlik et al. \[12\]): assign each
//!   instruction to one of several separate sub-predictors. The paper's
//!   §5 argument: this introduces a *fixed* partitioning of the resources,
//!   while the DFCM shares one table dynamically — constants use one
//!   entry, each distinct stride one entry, the rest is free for contexts.
//!   (Rychlik's own classifier marked >50% of instructions unpredictable
//!   and reported 43% overall accuracy.)
//! * **Last-n value prediction** (Burtscher & Zorn \[2\]): widen each
//!   last-value entry to n candidates instead of adding context.
//!
//! Both are compared against a DFCM of *equal or smaller* storage.

use dfcm::{
    ClassifiedPredictor, DfcmPredictor, LastNValuePredictor, LastValuePredictor, ValuePredictor,
};
use dfcm_sim::report::{fmt_accuracy, fmt_kbits, TextTable};
use dfcm_sim::run_suite;

use crate::common::{banner, Options};

/// Runs the §5 related-work comparison.
pub fn run(opts: &Options) {
    banner(
        "Related work (§5): DFCM vs dynamic classification and last-n",
        "All predictors compared at comparable storage on the suite.",
    );
    let traces = opts.traces();
    let mut table = TextTable::new(vec!["predictor", "kbit", "accuracy"]);

    let mut row = |name: String, kbits: f64, acc: f64| {
        table.row(vec![name, fmt_kbits(kbits), fmt_accuracy(acc)]);
    };

    // Dynamic classification: LVP + stride + FCM sub-tables plus a
    // classifier, sized to ~match the DFCM below.
    let classified = || {
        ClassifiedPredictor::builder()
            .class_bits(12)
            .lvp_bits(11)
            .stride_bits(11)
            .fcm_bits(11, 12)
            .build()
            .expect("valid")
    };
    let result = run_suite(classified, &traces);
    row(
        result.predictor.clone(),
        result.kbits,
        result.weighted_accuracy(),
    );

    // Report the classification census of one representative benchmark.
    let mut census_probe = classified();
    for r in &traces[0].trace {
        census_probe.access(r.pc, r.value);
    }
    let census = census_probe.census();
    println!(
        "classification census (cc1): lvp {}, stride {}, fcm {}, unpredictable {}",
        census.last_value, census.stride, census.fcm, census.unpredictable
    );

    // Last-n value predictors.
    for n in [1usize, 2, 4] {
        let result = run_suite(|| LastNValuePredictor::new(12, n), &traces);
        row(
            result.predictor.clone(),
            result.kbits,
            result.weighted_accuracy(),
        );
    }
    let result = run_suite(|| LastValuePredictor::new(12), &traces);
    row(
        result.predictor.clone(),
        result.kbits,
        result.weighted_accuracy(),
    );

    // The DFCM at comparable (and at half) storage.
    for (l1, l2) in [(12u32, 12u32), (11, 11)] {
        let result = run_suite(
            || {
                DfcmPredictor::builder()
                    .l1_bits(l1)
                    .l2_bits(l2)
                    .build()
                    .expect("valid")
            },
            &traces,
        );
        row(
            result.predictor.clone(),
            result.kbits,
            result.weighted_accuracy(),
        );
    }

    print!("{}", table.render());
    opts.emit(&table, "related");
    println!();
    println!(
        "Check (paper §5): the DFCM beats the fixed-partitioned classified predictor \
         at comparable storage, and last-n widening is no substitute for context."
    );
}
