//! Section 4.4: reducing the width of the stored differences.
//!
//! The DFCM's level-2 table holds differences, which rarely need the full
//! architectural width. The paper: storing 16 bits costs .01–.03
//! accuracy, 8 bits .05–.08 — but shrinking the number of level-2
//! *entries* is a better trade at both ends, so partial-width storage is
//! "not very useful". We sweep widths × sizes and print both the accuracy
//! drops and the paper's entries-vs-width comparison.

use dfcm::{DfcmPredictor, StrideWidth, ValuePredictor};
use dfcm_sim::report::{fmt_accuracy, fmt_kbits, TextTable};
use dfcm_sim::run_suite;

use crate::common::{banner, Options};

/// Runs the Section 4.4 reproduction.
pub fn run(opts: &Options) {
    banner(
        "Section 4.4: partial-width difference storage",
        "DFCM accuracy when the level-2 table stores truncated differences.",
    );
    let traces = opts.traces();
    let widths = [
        ("full", StrideWidth::Full),
        ("16b", StrideWidth::Bits(16)),
        ("8b", StrideWidth::Bits(8)),
    ];
    let mut table = TextTable::new(vec!["l1", "l2", "width", "kbit", "accuracy", "drop"]);
    let mut drops_16 = Vec::new();
    let mut drops_8 = Vec::new();
    for l1 in [12u32, 16] {
        for l2 in [10u32, 12, 14, 16] {
            let mut baseline = None;
            for (label, width) in widths {
                let build = || {
                    DfcmPredictor::builder()
                        .l1_bits(l1)
                        .l2_bits(l2)
                        .stride_width(width)
                        .build()
                        .expect("valid")
                };
                let kbits = build().storage().kbits();
                let acc = run_suite(build, &traces).weighted_accuracy();
                let base = *baseline.get_or_insert(acc);
                let drop = base - acc;
                match width {
                    StrideWidth::Bits(16) => drops_16.push(drop),
                    StrideWidth::Bits(8) => drops_8.push(drop),
                    _ => {}
                }
                table.row(vec![
                    format!("2^{l1}"),
                    format!("2^{l2}"),
                    label.into(),
                    fmt_kbits(kbits),
                    fmt_accuracy(acc),
                    format!("{drop:.3}"),
                ]);
            }
        }
    }
    print!("{}", table.render());
    opts.emit(&table, "sec4_4");
    println!();
    let range = |v: &[f64]| {
        let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        format!("{lo:.3}..{hi:.3}")
    };
    println!(
        "Check (paper): 16-bit differences cost .01-.03 accuracy (here {}), \
         8-bit cost .05-.08 (here {}). Compare with quartering the number of \
         level-2 entries, which saves the same bits at lower accuracy cost \
         (Figure 11(a))'s weak level-2 dependence).",
        range(&drops_16),
        range(&drops_8),
    );
}
