//! Extension experiment: how much accuracy do finite tables and lossy
//! hashing cost?
//!
//! §4.2 ends with the observation that even after the DFCM's improvement,
//! hash aliasing still causes the majority of mispredictions — "there is
//! still plenty of room for improvement". This experiment quantifies that
//! room by comparing each real predictor against an
//! [`IdealContextPredictor`] of matching
//! order: per-instruction, unbounded, collision-free context tables. The
//! residual gap between the real predictor and its oracle is exactly the
//! loss to level-1 aliasing + hashing + capacity (minus any constructive
//! cross-instruction sharing the oracle forgoes).

use dfcm::{AnalyzedKind, DfcmPredictor, FcmPredictor, IdealContextPredictor, ValuePredictor};
use dfcm_sim::report::{fmt_accuracy, TextTable};
use dfcm_sim::run_suite;

use crate::common::{banner, Options};

/// Runs the room-for-improvement analysis.
pub fn run(opts: &Options) {
    banner(
        "Extension (§4.2): room for improvement vs ideal context tables",
        "Ideal = per-instruction, unbounded, collision-free tables of the same order.",
    );
    let traces = opts.traces();
    let mut table = TextTable::new(vec!["predictor", "accuracy", "ideal", "gap"]);
    for (kind, label) in [(AnalyzedKind::Fcm, "fcm"), (AnalyzedKind::Dfcm, "dfcm")] {
        for l2 in [12u32, 16] {
            let real = match kind {
                AnalyzedKind::Fcm => run_suite(
                    || -> Box<dyn ValuePredictor> {
                        Box::new(
                            FcmPredictor::builder()
                                .l1_bits(16)
                                .l2_bits(l2)
                                .build()
                                .expect("valid"),
                        )
                    },
                    &traces,
                ),
                AnalyzedKind::Dfcm => run_suite(
                    || -> Box<dyn ValuePredictor> {
                        Box::new(
                            DfcmPredictor::builder()
                                .l1_bits(16)
                                .l2_bits(l2)
                                .build()
                                .expect("valid"),
                        )
                    },
                    &traces,
                ),
            };
            let order = dfcm::HashFunction::FsR5.order(l2) as usize;
            let ideal = run_suite(|| IdealContextPredictor::new(kind, order), &traces);
            let (r, i) = (real.weighted_accuracy(), ideal.weighted_accuracy());
            table.row(vec![
                format!("{label}(2^16/2^{l2}, order {order})"),
                fmt_accuracy(r),
                fmt_accuracy(i),
                format!("{:+.3}", i - r),
            ]);
        }
    }
    print!("{}", table.render());
    opts.emit(&table, "ideal");
    println!();
    println!(
        "Check (paper §4.2): real predictors sit well below their collision-free \
         oracles — the remaining gap is the aliasing/capacity loss the paper says \
         leaves 'plenty of room for improvement'."
    );
}
