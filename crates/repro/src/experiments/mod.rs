//! One module per table/figure of the paper's evaluation.

pub mod fig03;
pub mod fig04_08;
pub mod fig06_09;
pub mod fig10;
pub mod fig11;
pub mod fig12_14;
pub mod fig16;
pub mod fig17;
pub mod ideal;
pub mod order;
pub mod phases;
pub mod related;
pub mod sec4_4;
pub mod specupdate;
pub mod speedup;
pub mod table1;
pub mod tags;
pub mod vmbench;
