//! Figure 16: the DFCM vs. hybrid predictors with a perfect
//! meta-predictor.
//!
//! All level-1 tables (and the stride predictor) have 2^16 entries; the
//! level-2 size is swept. The perfect meta-predictor is an oracle that
//! picks a correct component whenever one exists — an upper bound no real
//! hybrid can beat. The paper's findings: the DFCM outperforms the perfect
//! STRIDE+FCM hybrid at every size, and a perfect STRIDE+DFCM hybrid adds
//! only .02–.04 (the DFCM already catches practically all stride
//! patterns).

use dfcm::{
    CounterMeta, DfcmPredictor, FcmPredictor, HybridPredictor, PerfectMeta, StridePredictor,
};
use dfcm_sim::report::{fmt_accuracy, TextTable};
use dfcm_sim::run_suite;

use crate::common::{banner, Options};

/// Runs the Figure 16 reproduction.
pub fn run(opts: &Options) {
    banner(
        "Figure 16: hybrid predictors (perfect meta-predictor), L1 = 2^16",
        "STRIDE+FCM and STRIDE+DFCM use a perfect (oracle) selector.",
    );
    let traces = opts.traces();
    let mut table = TextTable::new(vec![
        "l2",
        "FCM",
        "DFCM",
        "STRIDE+FCM",
        "STRIDE+DFCM",
        "real STRIDE+FCM",
    ]);
    let mut dfcm_beats_hybrid_everywhere = true;
    let mut dfcm_within_real_hybrid = true;
    let mut max_stride_dfcm_gain: f64 = 0.0;
    for l2 in opts.l2_sweep() {
        let fcm = run_suite(
            || {
                FcmPredictor::builder()
                    .l1_bits(16)
                    .l2_bits(l2)
                    .build()
                    .expect("valid")
            },
            &traces,
        )
        .weighted_accuracy();
        let dfcm = run_suite(
            || {
                DfcmPredictor::builder()
                    .l1_bits(16)
                    .l2_bits(l2)
                    .build()
                    .expect("valid")
            },
            &traces,
        )
        .weighted_accuracy();
        let stride_fcm = run_suite(
            || {
                HybridPredictor::new(
                    StridePredictor::new(16),
                    FcmPredictor::builder()
                        .l1_bits(16)
                        .l2_bits(l2)
                        .build()
                        .expect("valid"),
                    PerfectMeta,
                )
            },
            &traces,
        )
        .weighted_accuracy();
        let stride_dfcm = run_suite(
            || {
                HybridPredictor::new(
                    StridePredictor::new(16),
                    DfcmPredictor::builder()
                        .l1_bits(16)
                        .l2_bits(l2)
                        .build()
                        .expect("valid"),
                    PerfectMeta,
                )
            },
            &traces,
        )
        .weighted_accuracy();
        // A *realizable* selector (PC-indexed saturating counters), for
        // scale: the paper argues no implementable meta-predictor can
        // reach the oracle, so the DFCM beats any real hybrid.
        let real_hybrid = run_suite(
            || {
                HybridPredictor::new(
                    StridePredictor::new(16),
                    FcmPredictor::builder()
                        .l1_bits(16)
                        .l2_bits(l2)
                        .build()
                        .expect("valid"),
                    CounterMeta::new(16),
                )
            },
            &traces,
        )
        .weighted_accuracy();
        dfcm_beats_hybrid_everywhere &= dfcm >= stride_fcm - 1e-9;
        dfcm_within_real_hybrid &= dfcm > real_hybrid - 0.02;
        max_stride_dfcm_gain = max_stride_dfcm_gain.max(stride_dfcm - dfcm);
        table.row(vec![
            format!("2^{l2}"),
            fmt_accuracy(fcm),
            fmt_accuracy(dfcm),
            fmt_accuracy(stride_fcm),
            fmt_accuracy(stride_dfcm),
            fmt_accuracy(real_hybrid),
        ]);
    }
    print!("{}", table.render());
    opts.emit(&table, "fig16");
    println!();
    println!(
        "Check (paper): the DFCM matches or beats the perfect STRIDE+FCM hybrid \
         (paper: strictly above; here: {}); \
         perfect STRIDE+DFCM adds at most {:.3} over DFCM (paper: .02-.04). \
         On this synthetic suite the DFCM ties the oracle hybrid to within ~.01 \
         instead of strictly beating it — see EXPERIMENTS.md for the analysis. \
         The realizable counter-based hybrid tracks its oracle closely; the \
         DFCM matches it within ~.01 everywhere ({}) while the hybrid pays for \
         an extra 2^16-entry stride table and meta table — the paper's point \
         that hybrids consume more hardware for no accuracy advantage.",
        if dfcm_beats_hybrid_everywhere {
            "strictly above"
        } else {
            "tied within ~.015"
        },
        max_stride_dfcm_gain,
        if dfcm_within_real_hybrid {
            "holds"
        } else {
            "FAILS"
        },
    );
}
