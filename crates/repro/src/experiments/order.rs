//! Ablation: history order via the FS R-k hash family.
//!
//! The paper couples the order to the level-2 size through FS R-5
//! (order = ⌈n/5⌉) and notes it did not re-optimize order or hash for the
//! DFCM. This ablation sweeps the fold shift k (order = ⌈n/k⌉) at a fixed
//! geometry for both predictors, plus the degenerate order-insensitive
//! fold-XOR hash — quantifying how much of each predictor's accuracy
//! hinges on the history depth.

use dfcm::{DfcmPredictor, FcmPredictor, HashFunction};
use dfcm_sim::report::{fmt_accuracy, TextTable};
use dfcm_sim::run_suite;

use crate::common::{banner, Options};

/// Runs the order ablation.
pub fn run(opts: &Options) {
    banner(
        "Ablation: history order (FS R-k hash family), 2^16/2^12",
        "order = ceil(12 / shift); shift 5 is the paper's FS R-5 (order 3).",
    );
    let traces = opts.traces();
    let mut table = TextTable::new(vec!["hash", "order", "FCM", "DFCM"]);
    let mut configs: Vec<(String, HashFunction)> = [12u8, 6, 5, 4, 3, 2]
        .iter()
        .map(|&shift| (format!("fs-r{shift}"), HashFunction::FsShift { shift }))
        .collect();
    configs.push(("fold-xor".into(), HashFunction::FoldXor));
    for (label, hash) in configs {
        let fcm = run_suite(
            || {
                FcmPredictor::builder()
                    .l1_bits(16)
                    .l2_bits(12)
                    .hash(hash)
                    .build()
                    .expect("valid")
            },
            &traces,
        )
        .weighted_accuracy();
        let dfcm = run_suite(
            || {
                DfcmPredictor::builder()
                    .l1_bits(16)
                    .l2_bits(12)
                    .hash(hash)
                    .build()
                    .expect("valid")
            },
            &traces,
        )
        .weighted_accuracy();
        let order = match hash {
            HashFunction::FoldXor => "-".to_owned(),
            h => h.order(12).to_string(),
        };
        table.row(vec![label, order, fmt_accuracy(fcm), fmt_accuracy(dfcm)]);
    }
    print!("{}", table.render());
    opts.emit(&table, "order");
    println!();
    println!(
        "Check: mid orders (2-3) are the sweet spot for both predictors at this \
         table size — deep histories fragment the level-2 table, shallow ones \
         under-discriminate contexts, and the order-insensitive fold-XOR is \
         far worse. The paper's coupled choice (FS R-5, order 3 at 2^12) sits \
         at or near the optimum for both — its 'not to the disadvantage of \
         FCM' argument holds."
    );
}
