//! Figure 11: DFCM accuracy vs. total storage, and the FCM/DFCM Pareto
//! fronts.
//!
//! (a) One DFCM curve per level-1 size (2^10..2^16), swept over level-2
//! sizes — compared to the FCM (Figure 3) the accuracies are higher and
//! the level-2 dependence has a sharper knee.
//! (b) The Pareto fronts of all FCM and all DFCM configurations: the DFCM
//! front sits .06–.09 above the FCM front except at the smallest sizes
//! (paper: .66 vs .57 at ~200 Kbit, +15%).

use std::path::Path;

use dfcm::{DfcmPredictor, FcmPredictor, ValuePredictor};
use dfcm_sim::chart::{ScatterChart, Series};
use dfcm_sim::report::{fmt_accuracy, fmt_kbits, TextTable};
use dfcm_sim::{pareto_front, sweep_engine_ft, EngineConfig, EngineReport, ParetoPoint};

use crate::common::{banner, Options};

/// Runs the Figure 11(a) reproduction.
pub fn run_a(opts: &Options) {
    banner(
        "Figure 11(a): DFCM accuracy vs size, per level-1 size",
        "Each curve fixes the level-1 size and sweeps the level-2 size.",
    );
    let traces = opts.traces();
    let mut table = TextTable::new(vec!["l1", "l2", "kbit", "accuracy"]);
    let grid: Vec<(u32, u32)> = [10u32, 12, 14, 16]
        .iter()
        .flat_map(|&l1| opts.l2_sweep().into_iter().map(move |l2| (l1, l2)))
        .collect();
    let (points, metrics) = sweep_engine_ft(
        &grid,
        |&(l1, l2)| {
            DfcmPredictor::builder()
                .l1_bits(l1)
                .l2_bits(l2)
                .build()
                .expect("valid")
        },
        &traces,
        &opts.engine_config(),
        opts.checkpoint_for("fig11a").as_deref(),
    )
    .unwrap_or_else(|e| panic!("fig11a checkpoint: {e}"));
    Options::warn_failures(&metrics, "fig11a");
    opts.emit_metrics(&metrics, "fig11a");
    for point in points {
        let (l1, l2) = point.config;
        table.row(vec![
            format!("2^{l1}"),
            format!("2^{l2}"),
            fmt_kbits(point.kbits()),
            fmt_accuracy(point.accuracy()),
        ]);
    }
    print!("{}", table.render());
    opts.emit(&table, "fig11a");
}

fn grid_points<P, F>(
    l1s: &[u32],
    l2s: &[u32],
    factory: F,
    traces: &[dfcm_trace::BenchmarkTrace],
    engine: &EngineConfig,
    checkpoint: Option<&Path>,
) -> (Vec<ParetoPoint>, EngineReport)
where
    P: ValuePredictor,
    F: Fn(u32, u32) -> P + Send + Sync,
{
    let grid: Vec<(u32, u32)> = l1s
        .iter()
        .flat_map(|&l1| l2s.iter().map(move |&l2| (l1, l2)))
        .collect();
    let (points, report) = sweep_engine_ft(
        &grid,
        |&(l1, l2)| factory(l1, l2),
        traces,
        engine,
        checkpoint,
    )
    .unwrap_or_else(|e| panic!("fig11b checkpoint: {e}"));
    let points = points
        .into_iter()
        .map(|p| ParetoPoint {
            label: format!("l1=2^{},l2=2^{}", p.config.0, p.config.1),
            kbits: p.kbits(),
            accuracy: p.accuracy(),
        })
        .collect();
    (points, report)
}

/// Runs the Figure 11(b) reproduction.
pub fn run_b(opts: &Options) {
    banner(
        "Figure 11(b): Pareto fronts, FCM vs DFCM",
        "Configurations with higher accuracy than all same-or-smaller configurations.",
    );
    let traces = opts.traces();
    let l2s = opts.l2_sweep();
    let engine = opts.engine_config();
    let (fcm_points, mut metrics) = grid_points(
        &[0, 4, 6, 8, 10, 12, 14, 16],
        &l2s,
        |l1, l2| {
            FcmPredictor::builder()
                .l1_bits(l1)
                .l2_bits(l2)
                .build()
                .expect("valid")
        },
        &traces,
        &engine,
        opts.checkpoint_for("fig11b-fcm").as_deref(),
    );
    let (dfcm_points, dfcm_metrics) = grid_points(
        &[8, 10, 12, 14, 16],
        &l2s,
        |l1, l2| {
            DfcmPredictor::builder()
                .l1_bits(l1)
                .l2_bits(l2)
                .build()
                .expect("valid")
        },
        &traces,
        &engine,
        opts.checkpoint_for("fig11b-dfcm").as_deref(),
    );
    metrics.merge(dfcm_metrics);
    Options::warn_failures(&metrics, "fig11b");
    opts.emit_metrics(&metrics, "fig11b");

    let mut table = TextTable::new(vec!["front", "config", "kbit", "accuracy"]);
    for (name, points) in [("fcm", &fcm_points), ("dfcm", &dfcm_points)] {
        for p in pareto_front(points) {
            table.row(vec![
                name.into(),
                p.label.clone(),
                fmt_kbits(p.kbits),
                fmt_accuracy(p.accuracy),
            ]);
        }
    }
    print!("{}", table.render());
    println!();
    let front_points = |points: &[ParetoPoint]| -> Vec<(f64, f64)> {
        pareto_front(points)
            .iter()
            .map(|p| (p.kbits, p.accuracy))
            .collect()
    };
    print!(
        "{}",
        ScatterChart::new(56, 12)
            .log_x()
            .series(Series::new("fcm", front_points(&fcm_points)))
            .series(Series::new("dfcm", front_points(&dfcm_points)))
            .render()
    );
    opts.emit(&table, "fig11b");

    // The paper's summary comparison: best accuracy at <= 200 Kbit.
    let best_at = |points: &[ParetoPoint], budget: f64| {
        points
            .iter()
            .filter(|p| p.kbits <= budget)
            .map(|p| p.accuracy)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    println!();
    for budget in [100.0, 200.0, 400.0, 1000.0] {
        let f = best_at(&fcm_points, budget);
        let d = best_at(&dfcm_points, budget);
        if f.is_finite() && d.is_finite() {
            println!(
                "  best <= {budget:>6.0} Kbit: FCM {:.3}, DFCM {:.3} ({:+.1}%)",
                f,
                d,
                100.0 * (d / f - 1.0)
            );
        }
    }
    println!();
    println!(
        "Check (paper): the DFCM front is .06-.09 above the FCM front except for the \
         smallest sizes; at ~200 Kbit the paper reports .66 vs .57 (+15%)."
    );
}
