//! Figures 4 and 8: the worked example of a stride pattern stored in the
//! FCM vs. DFCM level-2 table.
//!
//! The pattern `0 1 2 3 4 5 6` is repeated; a third-order predictor with
//! a concatenating hash stores it. The FCM needs one level-2 entry per
//! distinct context (7 of them); the DFCM's difference histories collapse
//! to `1 1 1` almost everywhere.

use std::collections::BTreeMap;

use dfcm_sim::report::TextTable;

use crate::common::{banner, Options};

const PATTERN: [u64; 7] = [0, 1, 2, 3, 4, 5, 6];
const REPETITIONS: usize = 8;
const ORDER: usize = 3;

fn context_table(values: &[u64]) -> BTreeMap<Vec<u64>, (u64, u64)> {
    // context (order values) -> (next value last stored, access count)
    let mut table = BTreeMap::new();
    for w in values.windows(ORDER + 1) {
        let context = w[..ORDER].to_vec();
        let entry = table.entry(context).or_insert((0, 0));
        entry.0 = w[ORDER];
        entry.1 += 1;
    }
    table
}

fn render(title: &str, table: &BTreeMap<Vec<u64>, (u64, u64)>, csv: &str, opts: &Options) {
    println!("{title}");
    let mut text = TextTable::new(vec!["context", "value", "accesses"]);
    for (context, &(value, count)) in table {
        let ctx: Vec<String> = context.iter().map(|v| (*v as i64).to_string()).collect();
        text.row(vec![
            ctx.join(" "),
            (value as i64).to_string(),
            count.to_string(),
        ]);
    }
    print!("{}", text.render());
    opts.emit(&text, csv);
    println!();
}

/// Runs the Figure 4 / Figure 8 reproduction.
pub fn run(opts: &Options) {
    banner(
        "Figures 4 and 8: stride pattern in the level-2 table",
        "Third-order histories of the repeated pattern 0 1 2 3 4 5 6 (8 repetitions).",
    );

    let stream: Vec<u64> = (0..REPETITIONS)
        .flat_map(|_| PATTERN.iter().copied())
        .collect();

    // Figure 4: FCM contexts are the values themselves.
    let fcm = context_table(&stream);
    render(
        "Figure 4 (FCM): one level-2 entry per pattern element —",
        &fcm,
        "fig04",
        opts,
    );

    // Figure 8: DFCM contexts are the differences.
    let diffs: Vec<u64> = stream.windows(2).map(|w| w[1].wrapping_sub(w[0])).collect();
    let dfcm = context_table(&diffs);
    render(
        "Figure 8 (DFCM): the steady state collapses to context `1 1 1` —",
        &dfcm,
        "fig08",
        opts,
    );

    println!(
        "Check (paper): the FCM spreads the pattern over {} entries; the DFCM uses {} \
         (one steady-state entry plus the wrap-around contexts).",
        fcm.len(),
        dfcm.len()
    );
}
