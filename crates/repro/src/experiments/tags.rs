//! Extension experiment: the confidence estimator the paper suggests at
//! the end of §4.2.
//!
//! The paper observes that hash aliasing remains responsible for the
//! majority of DFCM mispredictions (59% in Figure 14) and suggests that a
//! confidence estimator should tag the level-2 table with "some bits of a
//! second hashing function, orthogonal to the main one". This experiment
//! implements the suggestion ([`dfcm::TaggedDfcmPredictor`]) and sweeps
//! the tag width and confidence threshold, reporting the coverage (issued
//! fraction) vs. issued-accuracy trade-off on the suite.

use dfcm::TaggedDfcmPredictor;
use dfcm_sim::report::{fmt_accuracy, TextTable};
use dfcm_sim::{simulate_confidence, ConfidenceStats};

use crate::common::{banner, Options};

/// Runs the §4.2 confidence-estimator extension.
pub fn run(opts: &Options) {
    banner(
        "Extension (§4.2): tagged-DFCM confidence estimator (2^12/2^12)",
        "Tag = low bits of an orthogonal second history hash; a prediction \
         is issued only on tag match and counter >= threshold.",
    );
    let traces = opts.traces();
    let mut table = TextTable::new(vec![
        "tag bits",
        "conf >=",
        "coverage",
        "issued acc",
        "overall acc",
    ]);
    for tag_bits in [0u32, 2, 4, 8] {
        for threshold in [0u8, 1, 2, 3] {
            let mut total = ConfidenceStats::default();
            for bench in &traces {
                let mut p = TaggedDfcmPredictor::builder()
                    .l1_bits(12)
                    .l2_bits(12)
                    .tag_bits(tag_bits)
                    .conf_threshold(threshold)
                    .build()
                    .expect("valid");
                let stats = simulate_confidence(&mut p, &bench.trace);
                total.all.merge(stats.all);
                total.issued.merge(stats.issued);
            }
            table.row(vec![
                tag_bits.to_string(),
                threshold.to_string(),
                fmt_accuracy(total.coverage()),
                fmt_accuracy(total.issued_accuracy()),
                fmt_accuracy(total.overall_accuracy()),
            ]);
        }
    }
    print!("{}", table.render());
    opts.emit(&table, "tags");
    println!();
    println!(
        "Check (paper's conjecture): tagging the level-2 table with orthogonal-hash \
         bits should track hash aliasing — issued accuracy should rise well above \
         the unconditional accuracy at useful coverage."
    );
}
