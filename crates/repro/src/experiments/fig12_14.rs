//! Figures 12–14: the aliasing analysis.
//!
//! Every prediction of a 2^12/2^12 FCM and DFCM is classified into the
//! paper's five aliasing categories (l1, hash, l2_priv, l2_pc, none; §4.2).
//!
//! * Figure 12 — prediction accuracy per category (FCM): `l1` and `hash`
//!   aliasing are destructive, `l2_pc` and `none` are benign.
//! * Figure 13 — fraction of all predictions per category, per benchmark,
//!   for both predictors: the DFCM trades quasi-random `hash` aliasing
//!   for benign intentional `l2_pc` aliasing.
//! * Figure 14 — the same fractions among mispredictions: `hash` dominates
//!   the remaining mispredictions for both predictors.

use dfcm::{AliasAnalyzer, AliasBreakdown, AliasClass, AnalyzedKind};
use dfcm_obs::timeseries::LaneSeries;
use dfcm_sim::report::{fmt_accuracy, TextTable};
use dfcm_sim::SERIES_CLASS_LABELS;
use dfcm_trace::BenchmarkTrace;

use crate::common::{banner, Options};

const L1_BITS: u32 = 12;
const L2_BITS: u32 = 12;

/// Classifies every access of every suite benchmark. With obs enabled,
/// additionally folds each prediction into a windowed phase series for
/// `spec` — one continuous prediction index across the benchmarks in
/// suite order, so the series' phase boundaries are the benchmark
/// boundaries — and records it on the handle (rendered by
/// `dfcm-tools obs report` from the `--obs` export).
fn analyze(
    opts: &Options,
    spec: &str,
    kind: AnalyzedKind,
    traces: &[BenchmarkTrace],
) -> Vec<(&'static str, AliasBreakdown)> {
    let mut series = opts
        .obs
        .is_enabled()
        .then(|| LaneSeries::with_defaults(spec, SERIES_CLASS_LABELS));
    let mut index = 0u64;
    let out = traces
        .iter()
        .map(|b| {
            let mut az = AliasAnalyzer::new(kind, L1_BITS, L2_BITS).expect("valid");
            for r in &b.trace {
                let (class, _) = az.access(r.pc, r.value);
                if let Some(series) = &mut series {
                    let slot = AliasClass::ALL
                        .iter()
                        .position(|c| *c == class)
                        .expect("every access is classified");
                    series.record(index, r.pc, slot, az.last_predicted(), r.value);
                }
                index += 1;
            }
            (b.name, az.breakdown())
        })
        .collect();
    if let Some(series) = series {
        opts.obs.record_series(series);
    }
    out
}

fn merged(per_bench: &[(&'static str, AliasBreakdown)]) -> AliasBreakdown {
    let mut total = AliasBreakdown::default();
    for (_, b) in per_bench {
        total.merge(b);
    }
    total
}

/// Folds a merged aliasing breakdown into the run's observability
/// metrics, using the paper's class taxonomy: the per-class
/// `predictor_alias_total` / `predictor_alias_correct_total` counters
/// and the matching `eval_accuracy` gauge (so `obs summarize --check`
/// can reconcile the counts). `spec` carries the figure name so that
/// figures analyzing the same predictor don't double-count.
fn record_obs(opts: &Options, spec: &str, total: &AliasBreakdown) {
    let obs = &opts.obs;
    if !obs.is_enabled() {
        return;
    }
    for class in AliasClass::ALL {
        let labels = [("spec", spec), ("class", class.label())];
        obs.add("predictor_alias_total", &labels, total.class_total(class));
        obs.add(
            "predictor_alias_correct_total",
            &labels,
            total.class_correct(class),
        );
    }
    obs.gauge("eval_accuracy", &[("spec", spec)], total.overall_accuracy());
}

fn fraction_table(
    title: &str,
    per_bench: &[(&'static str, AliasBreakdown)],
    value: impl Fn(&AliasBreakdown, AliasClass) -> f64,
) -> TextTable {
    let mut header = vec!["predictor/benchmark".to_owned()];
    header.extend(AliasClass::ALL.iter().map(|c| c.label().to_owned()));
    let mut table = TextTable::new(header);
    for (name, b) in per_bench {
        let mut row = vec![format!("{title}/{name}")];
        row.extend(AliasClass::ALL.iter().map(|&c| fmt_accuracy(value(b, c))));
        table.row(row);
    }
    let total = merged(per_bench);
    let mut row = vec![format!("{title}/avg")];
    row.extend(
        AliasClass::ALL
            .iter()
            .map(|&c| fmt_accuracy(value(&total, c))),
    );
    table.row(row);
    table
}

/// Runs the Figure 12 reproduction (accuracy per aliasing class, FCM).
pub fn run_fig12(opts: &Options) {
    banner(
        "Figure 12: prediction accuracy per aliasing class (FCM, 2^12/2^12)",
        "",
    );
    let traces = opts.traces();
    let fcm = analyze(opts, "fig12/fcm", AnalyzedKind::Fcm, &traces);
    let total = merged(&fcm);
    record_obs(opts, "fig12/fcm", &total);
    let mut table = TextTable::new(vec!["class", "fraction", "accuracy"]);
    for &class in &AliasClass::ALL {
        table.row(vec![
            class.label().into(),
            fmt_accuracy(total.fraction(class)),
            fmt_accuracy(total.accuracy(class)),
        ]);
    }
    print!("{}", table.render());
    opts.emit(&table, "fig12");
    println!();
    println!(
        "Check (paper): l1 and hash show very low accuracy; none and l2_pc are very \
         predictable (identical patterns from different instructions do not clash)."
    );
}

/// Runs the Figure 13 reproduction (class fractions, all predictions).
pub fn run_fig13(opts: &Options) {
    banner(
        "Figure 13: aliasing-class fractions over all predictions (2^12/2^12)",
        "",
    );
    let traces = opts.traces();
    let fcm = analyze(opts, "fig13/fcm", AnalyzedKind::Fcm, &traces);
    let dfcm = analyze(opts, "fig13/dfcm", AnalyzedKind::Dfcm, &traces);
    record_obs(opts, "fig13/fcm", &merged(&fcm));
    record_obs(opts, "fig13/dfcm", &merged(&dfcm));
    let mut table = fraction_table("fcm", &fcm, |b, c| b.fraction(c));
    let dfcm_table = fraction_table("dfcm", &dfcm, |b, c| b.fraction(c));
    for row in dfcm_table.rows() {
        table.row(row);
    }
    print!("{}", table.render());
    opts.emit(&table, "fig13");
    println!();
    let (f, d) = (merged(&fcm), merged(&dfcm));
    println!(
        "Check (paper): DFCM shifts hash aliasing into benign l2_pc aliasing \
         (hash {:.2} -> {:.2}; l2_pc {:.2} -> {:.2}; paper: hash 34% -> 25%, l2_pc ~2x).",
        f.fraction(AliasClass::Hash),
        d.fraction(AliasClass::Hash),
        f.fraction(AliasClass::L2Pc),
        d.fraction(AliasClass::L2Pc),
    );
}

/// Runs the Figure 14 reproduction (class fractions among mispredictions).
pub fn run_fig14(opts: &Options) {
    banner(
        "Figure 14: aliasing classes of mispredictions, as fraction of all predictions",
        "Bars stack to the global misprediction rate.",
    );
    let traces = opts.traces();
    let fcm = analyze(opts, "fig14/fcm", AnalyzedKind::Fcm, &traces);
    let dfcm = analyze(opts, "fig14/dfcm", AnalyzedKind::Dfcm, &traces);
    record_obs(opts, "fig14/fcm", &merged(&fcm));
    record_obs(opts, "fig14/dfcm", &merged(&dfcm));
    let mut table = fraction_table("fcm", &fcm, |b, c| b.misprediction_fraction(c));
    let dfcm_table = fraction_table("dfcm", &dfcm, |b, c| b.misprediction_fraction(c));
    for row in dfcm_table.rows() {
        table.row(row);
    }
    print!("{}", table.render());
    opts.emit(&table, "fig14");
    println!();
    let (f, d) = (merged(&fcm), merged(&dfcm));
    let f_mis: f64 = AliasClass::ALL
        .iter()
        .map(|&c| f.misprediction_fraction(c))
        .sum();
    let d_mis: f64 = AliasClass::ALL
        .iter()
        .map(|&c| d.misprediction_fraction(c))
        .sum();
    println!(
        "Check (paper): hash dominates mispredictions for both; total mispredictions \
         drop with the hash-alias reduction (FCM {:.3} -> DFCM {:.3}; hash share of \
         DFCM mispredictions {:.0}%, paper 59%).",
        f_mis,
        d_mis,
        100.0 * d.misprediction_fraction(AliasClass::Hash) / d_mis,
    );
}
