//! Figure 17: prediction accuracy under delayed update.
//!
//! A prediction's table update is applied only after `d` further
//! predictions (§4.5). Both predictors use 2^16 level-1 and 2^12 level-2
//! entries. The paper: both suffer significantly, the DFCM slightly more,
//! but the overall behaviour — and the DFCM's advantage — is preserved.

use dfcm::{DelayedUpdate, DfcmPredictor, FcmPredictor};
use dfcm_sim::chart::{ScatterChart, Series};
use dfcm_sim::report::{fmt_accuracy, TextTable};
use dfcm_sim::run_suite;

use crate::common::{banner, Options};

/// The delays (in predictions) the paper sweeps.
pub const DELAYS: [usize; 7] = [0, 16, 32, 64, 128, 256, 512];

/// Runs the Figure 17 reproduction.
pub fn run(opts: &Options) {
    banner(
        "Figure 17: accuracy under delayed update (2^16 / 2^12)",
        "The update for a prediction lands only after d further predictions.",
    );
    let traces = opts.traces();
    let mut table = TextTable::new(vec!["delay", "FCM", "DFCM"]);
    let mut rows = Vec::new();
    for d in DELAYS {
        let fcm = run_suite(
            || {
                DelayedUpdate::new(
                    FcmPredictor::builder()
                        .l1_bits(16)
                        .l2_bits(12)
                        .build()
                        .expect("valid"),
                    d,
                )
            },
            &traces,
        )
        .weighted_accuracy();
        let dfcm = run_suite(
            || {
                DelayedUpdate::new(
                    DfcmPredictor::builder()
                        .l1_bits(16)
                        .l2_bits(12)
                        .build()
                        .expect("valid"),
                    d,
                )
            },
            &traces,
        )
        .weighted_accuracy();
        rows.push((d, fcm, dfcm));
        table.row(vec![d.to_string(), fmt_accuracy(fcm), fmt_accuracy(dfcm)]);
    }
    print!("{}", table.render());
    println!();
    print!(
        "{}",
        ScatterChart::new(56, 10)
            .series(Series::new(
                "fcm",
                rows.iter().map(|&(d, f, _)| (d as f64, f)).collect(),
            ))
            .series(Series::new(
                "dfcm",
                rows.iter().map(|&(d, _, x)| (d as f64, x)).collect(),
            ))
            .render()
    );
    opts.emit(&table, "fig17");
    println!();
    let (d0, dmax) = (rows[0], rows[rows.len() - 1]);
    println!(
        "Check (paper): both predictors degrade with delay (FCM {:.3} -> {:.3}, \
         DFCM {:.3} -> {:.3}); DFCM stays ahead at every delay.",
        d0.1, dmax.1, d0.2, dmax.2,
    );
}
