//! Extension experiment: sensitivity to program phase changes.
//!
//! The paper evaluates steady traces; real programs move through phases.
//! When a phase change redirects the *same static instructions* to new
//! behaviour, every history-based predictor pays a re-learning cost and
//! the level-2 table churns. This experiment interleaves two synthetic
//! programs in bursts of varying length and measures how both predictors'
//! accuracy recovers as bursts grow — and whether the DFCM's advantage
//! survives phase pressure.

use dfcm::{DfcmPredictor, FcmPredictor, ValuePredictor};
use dfcm_sim::chart::{ScatterChart, Series};
use dfcm_sim::report::{fmt_accuracy, TextTable};
use dfcm_sim::{simulate_n, simulate_timeline};
use dfcm_trace::suite::standard_suite;
use dfcm_trace::PhasedProgram;

use crate::common::{banner, Options};

/// Runs the phase-sensitivity analysis.
pub fn run(opts: &Options) {
    banner(
        "Extension: accuracy under program phase changes (2^16/2^12)",
        "Two benchmark programs interleaved in bursts; both reuse the same PC space.",
    );
    let records = ((opts.scale * 4_000_000.0) as usize).clamp(20_000, 4_000_000);
    let suite = standard_suite();
    let ijpeg = suite.iter().find(|b| b.name() == "ijpeg").expect("ijpeg");
    let li = suite.iter().find(|b| b.name() == "li").expect("li");

    let mut table = TextTable::new(vec!["burst", "FCM", "DFCM", "gain"]);
    for burst in [100usize, 1_000, 10_000, 100_000] {
        let run_one = |dfcm: bool| {
            let mut source = PhasedProgram::new(vec![
                (ijpeg.program(opts.seed), burst),
                (li.program(opts.seed), burst),
            ]);
            let mut predictor: Box<dyn ValuePredictor> = if dfcm {
                Box::new(
                    DfcmPredictor::builder()
                        .l1_bits(16)
                        .l2_bits(12)
                        .build()
                        .expect("valid"),
                )
            } else {
                Box::new(
                    FcmPredictor::builder()
                        .l1_bits(16)
                        .l2_bits(12)
                        .build()
                        .expect("valid"),
                )
            };
            simulate_n(&mut predictor, &mut source, records).accuracy()
        };
        let f = run_one(false);
        let d = run_one(true);
        table.row(vec![
            burst.to_string(),
            fmt_accuracy(f),
            fmt_accuracy(d),
            format!("{:+.1}%", 100.0 * (d / f - 1.0)),
        ]);
    }
    print!("{}", table.render());
    opts.emit(&table, "phases");

    // Accuracy over time at one burst length: the re-learning sawtooth.
    let burst = 10_000usize;
    let window = 2_000usize;
    let timeline_records = records.min(20 * burst);
    let mut chart = ScatterChart::new(64, 10).y_range(0.0, 1.0);
    for dfcm in [false, true] {
        let mut source = PhasedProgram::new(vec![
            (ijpeg.program(opts.seed), burst),
            (li.program(opts.seed), burst),
        ]);
        let mut predictor: Box<dyn ValuePredictor> = if dfcm {
            Box::new(
                DfcmPredictor::builder()
                    .l1_bits(16)
                    .l2_bits(12)
                    .build()
                    .expect("valid"),
            )
        } else {
            Box::new(
                FcmPredictor::builder()
                    .l1_bits(16)
                    .l2_bits(12)
                    .build()
                    .expect("valid"),
            )
        };
        let windows = simulate_timeline(&mut predictor, &mut source, timeline_records, window);
        let points: Vec<(f64, f64)> = windows
            .iter()
            .enumerate()
            .map(|(i, w)| ((i * window) as f64, w.accuracy()))
            .collect();
        chart = chart.series(Series::new(if dfcm { "dfcm" } else { "fcm" }, points));
    }
    println!();
    println!("accuracy over time (burst {burst}, window {window}):");
    print!("{}", chart.render());
    println!();
    println!(
        "Check: short bursts (frequent phase switches) depress both predictors; \
         accuracy recovers as bursts lengthen, and the DFCM stays ahead at every \
         phase granularity."
    );
}
