//! Extension experiment: the headline comparison on real programs.
//!
//! The synthetic suite is calibrated; the VM kernels are not — they are
//! genuine programs whose value streams arise mechanically from their
//! algorithms. Rerunning the Figure 10(b) comparison on them shows the
//! paper's effect is not an artifact of workload calibration: kernels
//! whose hot loops mix many concurrent strides with other patterns gain
//! most, already-FCM-friendly kernels gain little, and the DFCM never
//! loses.

use dfcm::{DfcmPredictor, FcmPredictor, StridePredictor};
use dfcm_sim::kernel_traces_observed;
use dfcm_sim::report::{fmt_accuracy, TextTable};
use dfcm_sim::run_suite;

use crate::common::{banner, Options};

/// Runs the VM-kernel comparison.
pub fn run(opts: &Options) {
    banner(
        "Extension: FCM vs DFCM on real programs (VM kernels, 2^12/2^12)",
        "Genuine program traces from the VM, uncalibrated.",
    );
    let max_records = ((opts.scale * 10_000_000.0) as usize).clamp(20_000, 2_000_000);
    // The tier never affects the traces (differentially verified
    // bit-identical); with `--obs` the fast tier's fusion/replay
    // mechanics land in the export as `vm_*` metrics.
    let traces = kernel_traces_observed(max_records, opts.vm_tier, &opts.obs);

    let stride = run_suite(|| StridePredictor::new(12), &traces);
    let fcm = run_suite(
        || {
            FcmPredictor::builder()
                .l1_bits(12)
                .l2_bits(12)
                .build()
                .expect("valid")
        },
        &traces,
    );
    let dfcm = run_suite(
        || {
            DfcmPredictor::builder()
                .l1_bits(12)
                .l2_bits(12)
                .build()
                .expect("valid")
        },
        &traces,
    );

    let mut table = TextTable::new(vec!["kernel", "records", "stride", "FCM", "DFCM", "gain"]);
    for b in &fcm.benchmarks {
        let sa = stride.benchmark_accuracy(b.name).expect("same suite");
        let fa = b.stats.accuracy();
        let da = dfcm.benchmark_accuracy(b.name).expect("same suite");
        table.row(vec![
            b.name.to_owned(),
            b.stats.predictions.to_string(),
            fmt_accuracy(sa),
            fmt_accuracy(fa),
            fmt_accuracy(da),
            format!("{:+.1}%", 100.0 * (da / fa - 1.0)),
        ]);
    }
    let (fa, da) = (fcm.weighted_accuracy(), dfcm.weighted_accuracy());
    table.row(vec![
        "weighted".into(),
        "-".into(),
        fmt_accuracy(stride.weighted_accuracy()),
        fmt_accuracy(fa),
        fmt_accuracy(da),
        format!("{:+.1}%", 100.0 * (da / fa - 1.0)),
    ]);
    print!("{}", table.render());
    opts.emit(&table, "vmbench");
    println!();
    println!(
        "Check: the DFCM never loses on any real kernel; the kernels whose hot \
         loops mix many concurrent strides with other patterns (sieve, hashstr, \
         lzw, strsearch) gain most, while kernels already FCM-friendly (bubble, \
         queens, treeins) gain little — the paper's mechanism, on uncalibrated \
         programs."
    );
}
