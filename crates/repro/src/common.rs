//! Shared options and helpers for the reproduction experiments.

use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;

use dfcm_sim::{EngineConfig, EngineReport};
use dfcm_trace::suite::{standard_suite, standard_traces};
use dfcm_trace::{salvage_trace, BenchmarkTrace, Trace};

/// Command-line options shared by all experiments.
#[derive(Debug, Clone)]
pub struct Options {
    /// Master seed for workload generation.
    pub seed: u64,
    /// Trace-length scale (1.0 ≈ paper counts ÷ 100).
    pub scale: f64,
    /// Extend sweeps to the paper's largest table sizes (2^18, 2^20).
    pub full: bool,
    /// Directory for CSV output.
    pub out_dir: PathBuf,
    /// Also write a JSON copy of every table.
    pub json: bool,
    /// Engine worker threads; `0` picks one per hardware thread.
    pub threads: usize,
    /// Print engine progress counts on stderr.
    pub progress: bool,
    /// Checkpoint completed tasks under `<out_dir>/checkpoints/` and
    /// skip tasks already checkpointed by a previous (interrupted) run.
    pub resume: bool,
    /// Load suite traces from `<dir>/<benchmark>.trc` instead of
    /// regenerating them (`--traces DIR`).
    pub trace_dir: Option<PathBuf>,
    /// With `--traces`: refuse damaged trace files outright instead of
    /// salvaging the intact chunks with a warning (`--strict`).
    pub strict: bool,
    /// Observability handle threaded into the engine and experiments;
    /// enabled by `--obs DIR` (disabled — zero-cost — otherwise).
    pub obs: dfcm_obs::Obs,
    /// Directory the observability exports are written to at the end of
    /// the run (`--obs DIR`).
    pub obs_dir: Option<PathBuf>,
    /// VM execution tier for kernel workloads (`--vm-tier fast|interp`).
    /// The tiers are bit-identical, so this never changes results —
    /// `interp` exists as the always-correct baseline and escape hatch.
    pub vm_tier: dfcm_vm::Tier,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            seed: 12345,
            scale: 0.1,
            full: false,
            out_dir: PathBuf::from("results"),
            json: false,
            threads: 0,
            progress: false,
            resume: false,
            trace_dir: None,
            strict: false,
            obs: dfcm_obs::Obs::disabled(),
            obs_dir: None,
            vm_tier: dfcm_vm::Tier::Fast,
        }
    }
}

impl Options {
    /// The standard suite traces at these options: generated from
    /// `--seed`/`--scale`, or loaded from `--traces DIR`.
    ///
    /// # Panics
    ///
    /// Panics when `--traces` names files that are missing, unreadable,
    /// or (under `--strict`, or when nothing is recoverable) corrupt —
    /// the repro binaries treat unusable input as fatal rather than
    /// silently publishing tables from truncated traces.
    pub fn traces(&self) -> Vec<BenchmarkTrace> {
        self.load_traces().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Options::traces`].
    ///
    /// Without `--traces` this regenerates the suite and cannot fail.
    /// With `--traces DIR` each benchmark loads from `<dir>/<name>.trc`:
    /// under `--strict` any integrity failure (bad magic, chunk CRC
    /// mismatch, truncation) is an error; otherwise damaged files are
    /// salvaged chunk-by-chunk with a warning on stderr, and only a
    /// file with *nothing* recoverable is an error.
    ///
    /// # Errors
    ///
    /// Returns a rendered message naming the offending file.
    pub fn load_traces(&self) -> Result<Vec<BenchmarkTrace>, String> {
        let Some(dir) = &self.trace_dir else {
            return Ok(standard_traces(self.seed, self.scale));
        };
        standard_suite()
            .iter()
            .map(|spec| {
                let name = spec.name();
                let path = dir.join(format!("{name}.trc"));
                let trace = if self.strict {
                    Trace::load(&path)
                        .map_err(|e| format!("{}: {e} (running with --strict)", path.display()))?
                } else {
                    let file = File::open(&path).map_err(|e| format!("{}: {e}", path.display()))?;
                    let report = salvage_trace(BufReader::new(file))
                        .map_err(|e| format!("{}: {e}", path.display()))?;
                    if !report.intact() {
                        eprintln!(
                            "[dfcm-repro] warning: {}: salvaged {} of {} records \
                             ({} of {} chunks); rerun with --strict to refuse damaged traces",
                            path.display(),
                            report.recovered.len(),
                            report.declared_records,
                            report.recovered_chunks,
                            report.total_chunks,
                        );
                    }
                    if report.recovered.is_empty() && report.declared_records > 0 {
                        return Err(format!("{}: nothing recoverable", path.display()));
                    }
                    report.recovered
                };
                Ok(BenchmarkTrace { name, trace })
            })
            .collect()
    }

    /// The level-2 size exponents to sweep: the paper's 8..=20 step 2,
    /// capped at 16 unless `--full`.
    pub fn l2_sweep(&self) -> Vec<u32> {
        let max = if self.full { 20 } else { 16 };
        (8..=max).step_by(2).collect()
    }

    /// Path for an experiment's CSV file.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        self.out_dir.join(format!("{name}.csv"))
    }

    /// Writes an experiment table as CSV (and JSON when `--json` is set).
    ///
    /// # Panics
    ///
    /// Panics on I/O errors — the repro binaries treat an unwritable
    /// results directory as fatal.
    pub fn emit(&self, table: &dfcm_sim::report::TextTable, name: &str) {
        table
            .write_csv(self.csv_path(name))
            .unwrap_or_else(|e| panic!("writing {name}.csv: {e}"));
        if self.json {
            table
                .write_json(self.out_dir.join(format!("{name}.json")))
                .unwrap_or_else(|e| panic!("writing {name}.json: {e}"));
        }
    }

    /// The engine configuration these options select.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            threads: self.threads,
            progress: self.progress,
            obs: self.obs.clone(),
            ..EngineConfig::default()
        }
    }

    /// Writes the observability exports into the `--obs` directory, if
    /// one was given (no-op otherwise). Called once at the end of a run
    /// so `all` accumulates every experiment into one export.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors, like [`Options::emit`].
    pub fn emit_obs(&self) {
        if let Some(dir) = &self.obs_dir {
            self.obs
                .write_exports(dir)
                .unwrap_or_else(|e| panic!("writing obs exports to {}: {e}", dir.display()));
            println!(
                "observability exports -> {} (events.jsonl, trace.json, metrics.prom \
                 and, for runs that recorded phase series, series.jsonl)",
                dir.display()
            );
        }
    }

    /// The checkpoint path for a named sweep when `--resume` is set:
    /// `<out_dir>/checkpoints/<name>.jsonl`. `None` without `--resume`,
    /// so non-resumable runs leave no checkpoint files behind.
    pub fn checkpoint_for(&self, name: &str) -> Option<PathBuf> {
        self.resume.then(|| {
            self.out_dir
                .join("checkpoints")
                .join(format!("{name}.jsonl"))
        })
    }

    /// Warns on stderr about every failed task in an engine report.
    /// Benign when all tasks succeeded (the overwhelmingly common case);
    /// after a partial failure the emitted tables simply omit the failed
    /// benchmarks, and this makes that visible.
    pub fn warn_failures(report: &EngineReport, name: &str) {
        for t in report.failures() {
            eprintln!("[dfcm-repro] {name}: task `{}` {}", t.label, t.outcome);
        }
    }

    /// Writes an experiment's engine metrics as JSON lines under
    /// `<out_dir>/metrics/<name>.jsonl`.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors, like [`Options::emit`].
    pub fn emit_metrics(&self, report: &EngineReport, name: &str) {
        let path = self.out_dir.join("metrics").join(format!("{name}.jsonl"));
        report
            .write_jsonl(&path)
            .unwrap_or_else(|e| panic!("writing metrics/{name}.jsonl: {e}"));
    }
}

/// Prints an experiment header.
pub fn banner(title: &str, note: &str) {
    println!();
    println!("=== {title} ===");
    if !note.is_empty() {
        println!("{note}");
    }
    println!();
}

/// Number of worker threads for parallel sweeps.
pub fn workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
