//! Confidence-gated value speculation: the §4.2 extension end to end.
//!
//! Shows the coverage/accuracy dial of the tagged DFCM and what it means
//! in cycles under the first-order speculation model.
//!
//! Run with: `cargo run --release --example confidence [penalty]`

use dfcm_suite::predictors::{DfcmPredictor, TaggedDfcmPredictor};
use dfcm_suite::sim::speculation::{speculate_always, speculate_confident, SpeculationModel};
use dfcm_suite::trace::suite::standard_traces;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let penalty: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);
    let model = SpeculationModel {
        benefit: 1.0,
        penalty,
    };
    println!(
        "speculation model: +1 cycle per correct issue, -{penalty:.0} per squash \
         (break-even issued accuracy {:.1}%)\n",
        100.0 * model.break_even_accuracy()
    );

    let traces = standard_traces(42, 0.05);
    println!(
        "{:<26} {:>9} {:>11} {:>10}",
        "policy", "coverage", "issued acc", "net/1000"
    );
    println!("{}", "-".repeat(60));

    // Unconditional DFCM.
    let mut all = 0.0;
    let mut predictions = 0u64;
    let mut coverage_stats = (0u64, 0u64);
    for bench in &traces {
        let mut p = DfcmPredictor::builder().l1_bits(14).l2_bits(12).build()?;
        let out = speculate_always(model, &mut p, &bench.trace);
        all += out.net_cycles;
        predictions += out.stats.all.predictions;
        coverage_stats.0 += out.stats.issued.predictions;
        coverage_stats.1 += out.stats.issued.correct;
    }
    println!(
        "{:<26} {:>8.1}% {:>10.1}% {:>+10.1}",
        "dfcm, issue everything",
        100.0,
        100.0 * coverage_stats.1 as f64 / coverage_stats.0 as f64,
        1000.0 * all / predictions as f64
    );

    // Tagged DFCM across thresholds.
    for (tag_bits, threshold) in [(0u32, 1u8), (4, 1), (4, 3), (8, 3)] {
        let mut net = 0.0;
        let mut n = 0u64;
        let mut issued = (0u64, 0u64);
        for bench in &traces {
            let mut p = TaggedDfcmPredictor::builder()
                .l1_bits(14)
                .l2_bits(12)
                .tag_bits(tag_bits)
                .conf_threshold(threshold)
                .build()?;
            let out = speculate_confident(model, &mut p, &bench.trace);
            net += out.net_cycles;
            n += out.stats.all.predictions;
            issued.0 += out.stats.issued.predictions;
            issued.1 += out.stats.issued.correct;
        }
        println!(
            "{:<26} {:>8.1}% {:>10.1}% {:>+10.1}",
            format!("tagged t{tag_bits} conf>={threshold}"),
            100.0 * issued.0 as f64 / n as f64,
            100.0 * issued.1 as f64 / issued.0.max(1) as f64,
            1000.0 * net / n as f64
        );
    }

    println!(
        "\nRaise the tag width / threshold to trade coverage for issued accuracy; \
         \nthe profitable frontier moves with the squash penalty (try `-- 30`)."
    );
    Ok(())
}
