//! Size a value predictor for a storage budget.
//!
//! Sweeps FCM and DFCM table geometries over the synthetic SPECint95-like
//! suite, computes both Pareto fronts, and answers: which predictor and
//! geometry gives the best accuracy within a given Kbit budget? This is
//! the engineering question behind the paper's Figure 11(b).
//!
//! Run with: `cargo run --release --example table_tuning [budget_kbit]`

use dfcm_suite::predictors::{DfcmPredictor, FcmPredictor};
use dfcm_suite::sim::{pareto_front, sweep, ParetoPoint};
use dfcm_suite::trace::suite::standard_traces;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300.0);
    let traces = standard_traces(2024, 0.05);

    let l1s = [8u32, 10, 12, 14];
    let l2s = [8u32, 10, 12, 14];
    let grid: Vec<(u32, u32)> = l1s
        .iter()
        .flat_map(|&a| l2s.iter().map(move |&b| (a, b)))
        .collect();

    let fcm_points: Vec<ParetoPoint> = sweep(
        &grid,
        |&(l1, l2)| {
            FcmPredictor::builder()
                .l1_bits(l1)
                .l2_bits(l2)
                .build()
                .expect("valid")
        },
        &traces,
    )
    .into_iter()
    .map(|p| ParetoPoint {
        label: p.result.predictor.clone(),
        kbits: p.kbits(),
        accuracy: p.accuracy(),
    })
    .collect();

    let dfcm_points: Vec<ParetoPoint> = sweep(
        &grid,
        |&(l1, l2)| {
            DfcmPredictor::builder()
                .l1_bits(l1)
                .l2_bits(l2)
                .build()
                .expect("valid")
        },
        &traces,
    )
    .into_iter()
    .map(|p| ParetoPoint {
        label: p.result.predictor.clone(),
        kbits: p.kbits(),
        accuracy: p.accuracy(),
    })
    .collect();

    println!("Pareto-optimal configurations (suite-weighted accuracy):\n");
    for (name, points) in [("FCM", &fcm_points), ("DFCM", &dfcm_points)] {
        println!("{name}:");
        for p in pareto_front(points) {
            println!(
                "  {:<28} {:>8.1} Kbit   {:>5.1}%",
                p.label,
                p.kbits,
                100.0 * p.accuracy
            );
        }
        println!();
    }

    let best = |points: &[ParetoPoint]| {
        points
            .iter()
            .filter(|p| p.kbits <= budget)
            .max_by(|a, b| a.accuracy.total_cmp(&b.accuracy))
            .cloned()
    };
    println!("best within {budget:.0} Kbit:");
    for (name, points) in [("FCM", &fcm_points), ("DFCM", &dfcm_points)] {
        match best(points) {
            Some(p) => println!(
                "  {name:<5} {:<28} {:>8.1} Kbit   {:>5.1}%",
                p.label,
                p.kbits,
                100.0 * p.accuracy
            ),
            None => println!("  {name:<5} (no configuration fits)"),
        }
    }
    Ok(())
}
