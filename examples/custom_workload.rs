//! Build a custom synthetic workload and study how the predictors cope
//! with each value-pattern class in isolation and combined.
//!
//! Demonstrates the `dfcm-trace` generator API: per-instruction patterns,
//! loop-structured blocks, and deterministic seeding — and reproduces in
//! miniature the paper's core claim: FCM wastes its level-2 table on
//! strides, DFCM does not.
//!
//! Run with: `cargo run --release --example custom_workload`

use dfcm_suite::predictors::{DfcmPredictor, FcmPredictor, StridePredictor};
use dfcm_suite::sim::simulate_trace;
use dfcm_suite::trace::{Pattern, SyntheticProgram, Trace, TraceSource};

fn workload(patterns: Vec<(Pattern, u64)>, n: usize) -> Trace {
    let mut builder = SyntheticProgram::builder(99);
    for (pattern, weight) in patterns {
        builder.inst(pattern, weight);
    }
    builder.build().take_trace(n)
}

fn accuracies(trace: &Trace) -> Result<(f64, f64, f64), Box<dyn std::error::Error>> {
    let mut stride = StridePredictor::new(10);
    let mut fcm = FcmPredictor::builder().l1_bits(10).l2_bits(12).build()?;
    let mut dfcm = DfcmPredictor::builder().l1_bits(10).l2_bits(12).build()?;
    Ok((
        simulate_trace(&mut stride, trace).accuracy(),
        simulate_trace(&mut fcm, trace).accuracy(),
        simulate_trace(&mut dfcm, trace).accuracy(),
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<28} {:>8} {:>8} {:>8}",
        "workload (4096-entry L2)", "stride", "fcm", "dfcm"
    );
    println!("{}", "-".repeat(56));

    let cases: Vec<(&str, Vec<(Pattern, u64)>)> = vec![
        (
            "pure strides (16 streams)",
            (0..16)
                .map(|i| {
                    (
                        Pattern::StrideReset {
                            start: 1000 * i,
                            stride: 4 + i,
                            period: 300,
                        },
                        1,
                    )
                })
                .collect(),
        ),
        (
            "pure contexts (16 walks)",
            (0..16)
                .map(|i| {
                    (
                        Pattern::PointerChase {
                            nodes: 24,
                            base: 0x1000 * i,
                        },
                        1,
                    )
                })
                .collect(),
        ),
        (
            "strides + contexts",
            (0..8)
                .map(|i| {
                    (
                        Pattern::StrideReset {
                            start: 1000 * i,
                            stride: 4 + i,
                            period: 300,
                        },
                        1,
                    )
                })
                .chain((0..8).map(|i| {
                    (
                        Pattern::PointerChase {
                            nodes: 24,
                            base: 0x9000 + 0x1000 * i,
                        },
                        1,
                    )
                }))
                .collect(),
        ),
        (
            "monotone counters",
            (0..8)
                .map(|i| {
                    (
                        Pattern::Stride {
                            start: i << 32,
                            stride: 8,
                        },
                        1,
                    )
                })
                .collect(),
        ),
    ];

    for (label, patterns) in cases {
        let trace = workload(patterns, 200_000);
        let (s, f, d) = accuracies(&trace)?;
        println!(
            "{label:<28} {:>7.1}% {:>7.1}% {:>7.1}%",
            100.0 * s,
            100.0 * f,
            100.0 * d
        );
    }

    println!(
        "\nRow 1+3: stride streams crowd the FCM's level-2 table; the DFCM collapses\
         \neach to one entry. Row 2 shows the paper's caveat in the other direction:\
         \ndifference histories of non-stride patterns can be more ambiguous than value\
         \nhistories. Row 4 is unpredictable for the FCM at any size, trivial for DFCM."
    );
    Ok(())
}
