//! A guided tour of the paper's aliasing taxonomy (§4.2).
//!
//! Constructs one workload per aliasing class that makes that class
//! dominate, then runs the full suite-level analysis to show the DFCM's
//! signature shift: destructive `hash` aliasing traded for benign `l2_pc`
//! aliasing.
//!
//! Run with: `cargo run --release --example aliasing_tour`

use dfcm_suite::predictors::{AliasAnalyzer, AliasBreakdown, AliasClass, AnalyzedKind};
use dfcm_suite::trace::suite::standard_traces;
use dfcm_suite::trace::{Pattern, SyntheticProgram, TraceSource};

fn classify(analyzer: &mut AliasAnalyzer, source: &mut dyn TraceSource, n: usize) {
    for _ in 0..n {
        let Some(r) = source.next_record() else { break };
        analyzer.access(r.pc, r.value);
    }
}

fn print_breakdown(label: &str, b: &AliasBreakdown) {
    print!("{label:<32}");
    for class in AliasClass::ALL {
        print!("  {}:{:>5.1}%", class.label(), 100.0 * b.fraction(class));
    }
    println!("  (accuracy {:.1}%)", 100.0 * b.overall_accuracy());
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Single-cause workloads (FCM, tiny tables to provoke each class):\n");

    // l1: two instructions collide in a 1-entry level-1 table.
    let mut az = AliasAnalyzer::new(AnalyzedKind::Fcm, 0, 10)?;
    let mut p = SyntheticProgram::builder(1)
        .inst(Pattern::Periodic(vec![1, 2, 3]), 1)
        .inst(Pattern::Periodic(vec![9, 8, 7]), 1)
        .build();
    classify(&mut az, &mut p, 20_000);
    print_breakdown("l1 (histories interleave)", &az.breakdown());

    // hash: many contexts forced into a 16-entry level-2 table.
    let mut az = AliasAnalyzer::new(AnalyzedKind::Fcm, 8, 4)?;
    let mut p = SyntheticProgram::builder(2)
        .inst(
            Pattern::PointerChase {
                nodes: 48,
                base: 0x4000,
            },
            1,
        )
        .build();
    classify(&mut az, &mut p, 20_000);
    print_breakdown("hash (contexts collide)", &az.breakdown());

    // l2_pc: two instructions with the *same* pattern share entries.
    let mut az = AliasAnalyzer::new(AnalyzedKind::Fcm, 8, 12)?;
    let mut p = SyntheticProgram::builder(3)
        .inst(Pattern::Periodic(vec![4, 4, 2, 9]), 1)
        .inst(Pattern::Periodic(vec![4, 4, 2, 9]), 1)
        .build();
    classify(&mut az, &mut p, 20_000);
    print_breakdown("l2_pc (identical patterns)", &az.breakdown());

    // none: a lone instruction in roomy tables.
    let mut az = AliasAnalyzer::new(AnalyzedKind::Fcm, 8, 12)?;
    let mut p = SyntheticProgram::builder(4)
        .inst(Pattern::Periodic(vec![6, 1, 8]), 1)
        .build();
    classify(&mut az, &mut p, 20_000);
    print_breakdown("none (isolated pattern)", &az.breakdown());

    // The suite-level comparison: the DFCM's hash -> l2_pc shift.
    println!("\nSuite-level (2^12/2^12, li benchmark):");
    let li = &standard_traces(7, 0.05)[4];
    for kind in [AnalyzedKind::Fcm, AnalyzedKind::Dfcm] {
        let mut az = AliasAnalyzer::new(kind, 12, 12)?;
        for r in &li.trace {
            az.access(r.pc, r.value);
        }
        print_breakdown(&format!("{kind:?} on li"), &az.breakdown());
    }
    println!(
        "\nThe DFCM trades quasi-random hash aliasing (destructive) for intentional\n\
         l2_pc aliasing (benign: same-stride patterns deliberately share entries) —\n\
         the mechanism behind Figures 13 and 14."
    );
    Ok(())
}
