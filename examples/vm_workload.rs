//! Run a real program on the bundled RISC virtual machine and measure how
//! predictable its values are.
//!
//! Assembles a small dot-product kernel from source, executes it, and
//! feeds the emitted value trace (one record per integer-result
//! instruction, as in the paper's SimpleScalar methodology) to an FCM and
//! a DFCM. Also evaluates the paper's Figure 5 `norm` kernel.
//!
//! Run with: `cargo run --example vm_workload`

use dfcm_suite::predictors::{DfcmPredictor, FcmPredictor};
use dfcm_suite::sim::simulate_trace;
use dfcm_suite::trace::TraceSource;
use dfcm_suite::vm::{assemble, programs, Vm};

const DOT_PRODUCT: &str = "
; dot product of two 512-element vectors, 200 repetitions
.data
vec_a: .space 512
vec_b: .space 512
.text
main:
    li   r10, 0
    la   r20, vec_a
    la   r21, vec_b
init:
    andi r2, r10, 255
    add  r3, r20, r10
    sw   r2, 0(r3)
    sll  r4, r10, 1
    andi r4, r4, 511
    add  r3, r21, r10
    sw   r4, 0(r3)
    addi r10, r10, 1
    slti r5, r10, 512
    bne  r5, r0, init
    li   r12, 0            ; repetition counter
outer:
    li   r10, 0
    li   r15, 0            ; accumulator
dot:
    add  r3, r20, r10
    lw   r6, 0(r3)
    add  r3, r21, r10
    lw   r7, 0(r3)
    mul  r8, r6, r7
    add  r15, r15, r8
    addi r10, r10, 1
    slti r5, r10, 512
    bne  r5, r0, dot
    addi r12, r12, 1
    slti r5, r12, 200
    bne  r5, r0, outer
    halt
";

fn evaluate(
    label: &str,
    trace: &dfcm_suite::trace::Trace,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut fcm = FcmPredictor::builder().l1_bits(12).l2_bits(12).build()?;
    let mut dfcm = DfcmPredictor::builder().l1_bits(12).l2_bits(12).build()?;
    let f = simulate_trace(&mut fcm, trace);
    let d = simulate_trace(&mut dfcm, trace);
    println!(
        "{label:<12} {:>9} records   FCM {:>5.1}%   DFCM {:>5.1}%   ({:+.0}%)",
        trace.len(),
        100.0 * f.accuracy(),
        100.0 * d.accuracy(),
        100.0 * (d.accuracy() / f.accuracy() - 1.0),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut vm = Vm::new(assemble(DOT_PRODUCT)?);
    let trace = vm.take_trace(2_000_000);
    println!("value-prediction accuracy on VM-generated traces (2^12/2^12 tables):\n");
    evaluate("dot-product", &trace)?;

    for kernel in ["norm", "sieve", "treeins"] {
        let src = programs::by_name(kernel).expect("bundled kernel");
        let mut vm = Vm::new(assemble(src)?);
        let trace = vm.take_trace(1_000_000);
        evaluate(kernel, &trace)?;
    }

    println!(
        "\nStride-dominated kernels (dot-product, norm, sieve) show the \
         largest DFCM\ngains; pointer-chasing kernels (treeins) are \
         context-bound and gain less."
    );
    Ok(())
}
