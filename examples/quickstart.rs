//! Quickstart: predict the values of a small instruction stream with each
//! of the paper's predictors.
//!
//! Run with: `cargo run --example quickstart`

use dfcm_suite::predictors::{
    DfcmPredictor, FcmPredictor, LastValuePredictor, StridePredictor, ValuePredictor,
};
use dfcm_suite::sim::simulate_trace;
use dfcm_suite::trace::{Trace, TraceRecord};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A miniature program trace with the three classic value patterns:
    //   0x400000: a loop counter (stride pattern 0, 1, 2, ... with resets)
    //   0x400004: a loop-invariant base pointer (constant)
    //   0x400008: a repeating lookup sequence (context pattern)
    let lookup = [7u64, 99, 3, 12, 3];
    let mut trace = Trace::new();
    for lap in 0..200u64 {
        for i in 0..25u64 {
            trace.push(TraceRecord::new(0x400000, i));
            trace.push(TraceRecord::new(0x400004, 0x8000_0000));
            trace.push(TraceRecord::new(
                0x400008,
                lookup[((lap * 25 + i) % 5) as usize],
            ));
        }
    }

    println!(
        "trace: {} records from 3 static instructions\n",
        trace.len()
    );
    println!("{:<22} {:>9} {:>10}", "predictor", "accuracy", "size");
    println!("{}", "-".repeat(44));

    let report = |name: String, accuracy: f64, kbits: f64| {
        println!("{name:<22} {accuracy:>8.1}% {kbits:>8.1} Kb");
    };

    let mut lvp = LastValuePredictor::new(10);
    let stats = simulate_trace(&mut lvp, &trace);
    report(lvp.name(), 100.0 * stats.accuracy(), lvp.storage().kbits());

    let mut stride = StridePredictor::new(10);
    let stats = simulate_trace(&mut stride, &trace);
    report(
        stride.name(),
        100.0 * stats.accuracy(),
        stride.storage().kbits(),
    );

    let mut fcm = FcmPredictor::builder().l1_bits(10).l2_bits(12).build()?;
    let stats = simulate_trace(&mut fcm, &trace);
    report(fcm.name(), 100.0 * stats.accuracy(), fcm.storage().kbits());

    let mut dfcm = DfcmPredictor::builder().l1_bits(10).l2_bits(12).build()?;
    let stats = simulate_trace(&mut dfcm, &trace);
    report(
        dfcm.name(),
        100.0 * stats.accuracy(),
        dfcm.storage().kbits(),
    );

    println!(
        "\nThe DFCM handles all three patterns: strides collapse to one \
         level-2 entry\n(the FCM spreads them over the loop's period), \
         constants and contexts are\nlearned like an FCM."
    );
    Ok(())
}
