//! Integration tests driving the predictors with traces from real programs
//! executing on the VM substrate.

use dfcm_suite::predictors::{DfcmPredictor, FcmPredictor, StrideOccupancyProfiler};
use dfcm_suite::sim::simulate_trace;
use dfcm_suite::trace::{Trace, TraceSource};
use dfcm_suite::vm::{assemble, programs, Vm};

fn kernel_trace(name: &str, max: usize) -> Trace {
    let src = programs::by_name(name).expect("kernel exists");
    let mut vm = Vm::new(assemble(src).expect("assembles"));
    vm.take_trace(max)
}

/// The paper's central claim on its own motivating kernel: the DFCM beats
/// the FCM on `norm` (Figure 5) by a wide margin at realistic sizes.
#[test]
fn dfcm_beats_fcm_on_norm() {
    let trace = kernel_trace("norm", 400_000);
    let mut fcm = FcmPredictor::builder()
        .l1_bits(12)
        .l2_bits(12)
        .build()
        .unwrap();
    let mut dfcm = DfcmPredictor::builder()
        .l1_bits(12)
        .l2_bits(12)
        .build()
        .unwrap();
    let f = simulate_trace(&mut fcm, &trace).accuracy();
    let d = simulate_trace(&mut dfcm, &trace).accuracy();
    assert!(d > f + 0.05, "norm: DFCM {d:.3} vs FCM {f:.3}");
    assert!(d > 0.9, "norm is overwhelmingly stride-patterned: {d:.3}");
}

/// Every bundled kernel: DFCM never loses to FCM by more than noise, and
/// stride-heavy kernels gain substantially.
#[test]
fn dfcm_never_loses_on_kernels() {
    for (name, _) in programs::all() {
        let trace = kernel_trace(name, 250_000);
        let mut fcm = FcmPredictor::builder()
            .l1_bits(12)
            .l2_bits(12)
            .build()
            .unwrap();
        let mut dfcm = DfcmPredictor::builder()
            .l1_bits(12)
            .l2_bits(12)
            .build()
            .unwrap();
        let f = simulate_trace(&mut fcm, &trace).accuracy();
        let d = simulate_trace(&mut dfcm, &trace).accuracy();
        assert!(d > f - 0.02, "{name}: DFCM {d:.3} vs FCM {f:.3}");
    }
}

/// Figures 6 and 9 on the real `norm` kernel: the DFCM concentrates stride
/// patterns into far fewer level-2 entries than the FCM.
#[test]
fn norm_stride_occupancy_collapses_under_dfcm() {
    let trace = kernel_trace("norm", 400_000);

    let fcm = FcmPredictor::builder()
        .l1_bits(16)
        .l2_bits(12)
        .build()
        .unwrap();
    let mut pf = StrideOccupancyProfiler::new(fcm, 16);
    for r in &trace {
        pf.access(r.pc, r.value);
    }
    let fcm_hot = pf.stats().entries_with_at_least(100);

    let dfcm = DfcmPredictor::builder()
        .l1_bits(16)
        .l2_bits(12)
        .build()
        .unwrap();
    let mut pd = StrideOccupancyProfiler::new(dfcm, 16);
    for r in &trace {
        pd.access(r.pc, r.value);
    }
    let dfcm_hot = pd.stats().entries_with_at_least(100);

    assert!(
        fcm_hot > 100,
        "FCM should scatter norm's strides over >100 entries, got {fcm_hot}"
    );
    assert!(
        dfcm_hot < fcm_hot / 5,
        "DFCM should collapse stride entries at least 5x: {fcm_hot} -> {dfcm_hot}"
    );
}

/// VM traces are deterministic: same program, same trace.
#[test]
fn vm_traces_are_deterministic() {
    let a = kernel_trace("lzw", 100_000);
    let b = kernel_trace("lzw", 100_000);
    assert_eq!(a, b);
}

/// The VM's prediction-eligible instruction set matches the paper: no
/// branch/jump/store PCs appear in the trace.
#[test]
fn trace_contains_only_value_producers() {
    use dfcm_suite::vm::{Inst, TEXT_BASE};
    let src = programs::by_name("queens").unwrap();
    let program = assemble(src).unwrap();
    let insts = program.insts.clone();
    let mut vm = Vm::new(program);
    let trace = vm.take_trace(100_000);
    for r in trace.iter() {
        let idx = ((r.pc - TEXT_BASE) / 4) as usize;
        let inst = insts[idx];
        assert!(
            inst.dest().is_some(),
            "pc {:#x}: {inst:?} produced a record",
            r.pc
        );
        assert!(!inst.is_control(), "control instruction {inst:?} in trace");
        assert!(!matches!(inst, Inst::Sw(..)), "store in trace");
    }
}

/// Running a kernel through the whole stack (assemble -> execute -> trace
/// -> predictor) is reproducible end to end.
#[test]
fn end_to_end_accuracy_is_stable() {
    let run = || {
        let trace = kernel_trace("matmul", 200_000);
        let mut dfcm = DfcmPredictor::builder()
            .l1_bits(10)
            .l2_bits(12)
            .build()
            .unwrap();
        simulate_trace(&mut dfcm, &trace)
    };
    assert_eq!(run(), run());
}
