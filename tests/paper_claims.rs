//! Integration tests pinning the paper's headline claims on the synthetic
//! suite. These are the "shape" assertions of EXPERIMENTS.md: who wins,
//! in which direction the trends go — not absolute numbers.

use dfcm_suite::predictors::{
    DelayedUpdate, DfcmPredictor, FcmPredictor, HybridPredictor, PerfectMeta, StridePredictor,
    StrideWidth, ValuePredictor,
};
use dfcm_suite::sim::{run_suite, SuiteResult};
use dfcm_suite::trace::suite::standard_traces;
use dfcm_suite::trace::BenchmarkTrace;

const SEED: u64 = 424242;
const SCALE: f64 = 0.05;

fn traces() -> Vec<BenchmarkTrace> {
    standard_traces(SEED, SCALE)
}

fn fcm_suite(traces: &[BenchmarkTrace], l1: u32, l2: u32) -> SuiteResult {
    run_suite(
        || {
            FcmPredictor::builder()
                .l1_bits(l1)
                .l2_bits(l2)
                .build()
                .expect("valid")
        },
        traces,
    )
}

fn dfcm_suite(traces: &[BenchmarkTrace], l1: u32, l2: u32) -> SuiteResult {
    run_suite(
        || {
            DfcmPredictor::builder()
                .l1_bits(l1)
                .l2_bits(l2)
                .build()
                .expect("valid")
        },
        traces,
    )
}

/// §4.1: the DFCM outperforms a similar FCM at every level-2 size.
#[test]
fn dfcm_beats_fcm_at_every_l2_size() {
    let traces = traces();
    for l2 in [8u32, 10, 12, 14, 16] {
        let f = fcm_suite(&traces, 16, l2).weighted_accuracy();
        let d = dfcm_suite(&traces, 16, l2).weighted_accuracy();
        assert!(d > f, "l2=2^{l2}: DFCM {d:.3} must beat FCM {f:.3}");
    }
}

/// §4.1: the improvement is more pronounced for smaller level-2 tables.
#[test]
fn dfcm_gain_grows_as_l2_shrinks() {
    let traces = traces();
    let gain = |l2: u32| {
        let f = fcm_suite(&traces, 16, l2).weighted_accuracy();
        let d = dfcm_suite(&traces, 16, l2).weighted_accuracy();
        d / f
    };
    let small = gain(8);
    let mid = gain(12);
    let large = gain(16);
    assert!(
        small > mid && mid > large,
        "gain must shrink with table size: 2^8 {small:.3}, 2^12 {mid:.3}, 2^16 {large:.3}"
    );
}

/// §4.1 / Figure 10(b): every individual benchmark gains; m88ksim (the
/// constant-dominated benchmark) gains least, ijpeg (stride-dominated)
/// gains most.
#[test]
fn per_benchmark_gains_match_paper_ordering() {
    let traces = traces();
    let f = fcm_suite(&traces, 16, 12);
    let d = dfcm_suite(&traces, 16, 12);
    let mut gains = Vec::new();
    for b in &f.benchmarks {
        let fa = b.stats.accuracy();
        let da = d.benchmark_accuracy(b.name).expect("benchmark present");
        assert!(da > fa, "{}: DFCM {da:.3} must beat FCM {fa:.3}", b.name);
        gains.push((b.name, da / fa));
    }
    let min = gains
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty");
    let max = gains
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty");
    assert_eq!(
        min.0, "m88ksim",
        "smallest gain should be m88ksim, got {gains:?}"
    );
    assert_eq!(
        max.0, "ijpeg",
        "largest gain should be ijpeg, got {gains:?}"
    );
}

/// §4.3: the DFCM matches the perfect STRIDE+FCM hybrid regardless of the
/// level-2 size (the paper reports strictly above; see EXPERIMENTS.md).
#[test]
fn dfcm_beats_perfect_stride_fcm_hybrid() {
    let traces = traces();
    for l2 in [10u32, 12, 14] {
        let hybrid = run_suite(
            || {
                HybridPredictor::new(
                    StridePredictor::new(16),
                    FcmPredictor::builder()
                        .l1_bits(16)
                        .l2_bits(l2)
                        .build()
                        .expect("valid"),
                    PerfectMeta,
                )
            },
            &traces,
        )
        .weighted_accuracy();
        let d = dfcm_suite(&traces, 16, l2).weighted_accuracy();
        // Paper: the DFCM is strictly above the perfect hybrid. On the
        // synthetic suite it ties the oracle to within ~.015 (the suite is
        // heavier in pointer-walk contexts, where difference histories are
        // intrinsically more ambiguous than value histories — the caveat
        // the paper itself notes in §3). Pin the near-tie.
        assert!(
            d >= hybrid - 0.02,
            "l2=2^{l2}: DFCM {d:.3} must be within .02 of the perfect hybrid {hybrid:.3}"
        );
    }
}

/// §4.3: a perfect STRIDE+DFCM hybrid adds only a small amount (the paper
/// measures .02–.04) — practically all stride patterns are already
/// predicted by the DFCM.
#[test]
fn stride_dfcm_hybrid_adds_little() {
    let traces = traces();
    let d = dfcm_suite(&traces, 16, 12).weighted_accuracy();
    let hybrid = run_suite(
        || {
            HybridPredictor::new(
                StridePredictor::new(16),
                DfcmPredictor::builder()
                    .l1_bits(16)
                    .l2_bits(12)
                    .build()
                    .expect("valid"),
                PerfectMeta,
            )
        },
        &traces,
    )
    .weighted_accuracy();
    assert!(
        hybrid >= d,
        "an oracle hybrid can never lose to its component"
    );
    assert!(
        hybrid - d < 0.08,
        "oracle stride addition should be small: DFCM {d:.3}, hybrid {hybrid:.3}"
    );
}

/// §4.5: delayed update hurts both predictors, and the DFCM stays ahead.
#[test]
fn delayed_update_degrades_but_preserves_ordering() {
    let traces = traces();
    let run = |delay: usize, dfcm: bool| {
        run_suite(
            || -> Box<dyn ValuePredictor> {
                if dfcm {
                    Box::new(DelayedUpdate::new(
                        DfcmPredictor::builder()
                            .l1_bits(16)
                            .l2_bits(12)
                            .build()
                            .expect("valid"),
                        delay,
                    ))
                } else {
                    Box::new(DelayedUpdate::new(
                        FcmPredictor::builder()
                            .l1_bits(16)
                            .l2_bits(12)
                            .build()
                            .expect("valid"),
                        delay,
                    ))
                }
            },
            &traces,
        )
        .weighted_accuracy()
    };
    for dfcm in [false, true] {
        let immediate = run(0, dfcm);
        let delayed = run(128, dfcm);
        assert!(
            delayed < immediate,
            "delay must cost accuracy (dfcm={dfcm}): {immediate:.3} -> {delayed:.3}"
        );
    }
    for delay in [0usize, 32, 256] {
        assert!(
            run(delay, true) > run(delay, false),
            "DFCM must stay ahead at delay {delay}"
        );
    }
}

/// §4.4: truncating stored differences costs a little at 16 bits and more
/// at 8 bits, in the paper's bands (.01–.03 and .05–.08, loosened here
/// for the synthetic workload).
#[test]
fn narrow_stride_storage_costs_accuracy_in_bands() {
    let traces = traces();
    let acc = |width: StrideWidth| {
        run_suite(
            || {
                DfcmPredictor::builder()
                    .l1_bits(16)
                    .l2_bits(12)
                    .stride_width(width)
                    .build()
                    .expect("valid")
            },
            &traces,
        )
        .weighted_accuracy()
    };
    let full = acc(StrideWidth::Full);
    let w16 = acc(StrideWidth::Bits(16));
    let w8 = acc(StrideWidth::Bits(8));
    let drop16 = full - w16;
    let drop8 = full - w8;
    assert!(
        drop16 >= 0.0,
        "16-bit storage cannot gain accuracy: {drop16:.4}"
    );
    assert!(
        drop8 > drop16,
        "8-bit must cost more than 16-bit: {drop8:.4} vs {drop16:.4}"
    );
    assert!(
        drop16 < 0.06,
        "16-bit drop should be small, got {drop16:.4}"
    );
    assert!(
        drop8 < 0.15,
        "8-bit drop should be moderate, got {drop8:.4}"
    );
}

/// §2.4 / Figure 3: the FCM is the most accurate simple predictor at large
/// sizes, and a large FCM beats LVP and stride predictors.
#[test]
fn fcm_is_best_simple_predictor_at_large_sizes() {
    use dfcm_suite::predictors::LastValuePredictor;
    let traces = traces();
    let fcm = fcm_suite(&traces, 16, 16).weighted_accuracy();
    let lvp = run_suite(|| LastValuePredictor::new(16), &traces).weighted_accuracy();
    let stride = run_suite(|| StridePredictor::new(16), &traces).weighted_accuracy();
    assert!(fcm > lvp, "FCM {fcm:.3} must beat LVP {lvp:.3}");
    assert!(fcm > stride, "FCM {fcm:.3} must beat stride {stride:.3}");
}

/// Figure 3: growing either FCM table helps (monotone within sweep noise).
#[test]
fn fcm_accuracy_grows_with_tables() {
    let traces = traces();
    let small = fcm_suite(&traces, 12, 10).weighted_accuracy();
    let bigger_l2 = fcm_suite(&traces, 12, 14).weighted_accuracy();
    let bigger_both = fcm_suite(&traces, 16, 14).weighted_accuracy();
    assert!(bigger_l2 > small);
    assert!(bigger_both >= bigger_l2 - 0.01);
}
