//! Integration tests for the aliasing taxonomy (§4.2, Figures 12–14) on
//! suite-scale workloads.

use dfcm_suite::predictors::{
    AliasAnalyzer, AliasBreakdown, AliasClass, AnalyzedKind, DfcmPredictor, FcmPredictor,
    ValuePredictor,
};
use dfcm_suite::trace::suite::standard_traces;
use dfcm_suite::trace::BenchmarkTrace;

fn analyze(kind: AnalyzedKind, traces: &[BenchmarkTrace]) -> AliasBreakdown {
    let mut total = AliasBreakdown::default();
    for bench in traces {
        let mut az = AliasAnalyzer::new(kind, 12, 12).unwrap();
        for r in &bench.trace {
            az.access(r.pc, r.value);
        }
        total.merge(&az.breakdown());
    }
    total
}

/// The analyzer's replicated predictor must agree exactly with the real
/// predictors on full suite traces (guards against divergence).
#[test]
fn analyzer_matches_real_predictors_on_suite() {
    let traces = standard_traces(7, 0.02);
    for bench in &traces {
        let mut az_f = AliasAnalyzer::new(AnalyzedKind::Fcm, 12, 12).unwrap();
        let mut az_d = AliasAnalyzer::new(AnalyzedKind::Dfcm, 12, 12).unwrap();
        let mut fcm = FcmPredictor::builder()
            .l1_bits(12)
            .l2_bits(12)
            .build()
            .unwrap();
        let mut dfcm = DfcmPredictor::builder()
            .l1_bits(12)
            .l2_bits(12)
            .build()
            .unwrap();
        for r in &bench.trace {
            assert_eq!(
                az_f.access(r.pc, r.value).1,
                fcm.access(r.pc, r.value).correct
            );
            assert_eq!(
                az_d.access(r.pc, r.value).1,
                dfcm.access(r.pc, r.value).correct
            );
        }
    }
}

/// Figure 12: destructive classes (l1, hash) have low accuracy; benign
/// classes (l2_pc, none) have high accuracy.
#[test]
fn class_accuracies_split_destructive_vs_benign() {
    let traces = standard_traces(7, 0.05);
    let b = analyze(AnalyzedKind::Fcm, &traces);
    assert!(
        b.accuracy(AliasClass::Hash) < 0.25,
        "hash: {:.3}",
        b.accuracy(AliasClass::Hash)
    );
    assert!(
        b.accuracy(AliasClass::L2Pc) > 0.7,
        "l2_pc: {:.3}",
        b.accuracy(AliasClass::L2Pc)
    );
    assert!(
        b.accuracy(AliasClass::NoAlias) > 0.8,
        "none: {:.3}",
        b.accuracy(AliasClass::NoAlias)
    );
}

/// Figure 13: the DFCM reduces hash aliasing and increases the benign
/// l2_pc aliasing relative to the FCM.
#[test]
fn dfcm_trades_hash_for_l2pc_aliasing() {
    let traces = standard_traces(7, 0.05);
    let f = analyze(AnalyzedKind::Fcm, &traces);
    let d = analyze(AnalyzedKind::Dfcm, &traces);
    assert!(
        d.fraction(AliasClass::Hash) < f.fraction(AliasClass::Hash),
        "hash fraction must drop: {:.3} -> {:.3}",
        f.fraction(AliasClass::Hash),
        d.fraction(AliasClass::Hash)
    );
    assert!(
        d.fraction(AliasClass::L2Pc) > f.fraction(AliasClass::L2Pc),
        "l2_pc fraction must rise: {:.3} -> {:.3}",
        f.fraction(AliasClass::L2Pc),
        d.fraction(AliasClass::L2Pc)
    );
}

/// Figure 14: hash aliasing is the dominant cause of mispredictions for
/// both predictors, and the DFCM's total misprediction rate is lower.
#[test]
fn hash_aliasing_dominates_mispredictions() {
    let traces = standard_traces(7, 0.05);
    for kind in [AnalyzedKind::Fcm, AnalyzedKind::Dfcm] {
        let b = analyze(kind, &traces);
        let hash_mis = b.misprediction_fraction(AliasClass::Hash);
        for class in [AliasClass::L1, AliasClass::L2Priv, AliasClass::L2Pc] {
            assert!(
                hash_mis > b.misprediction_fraction(class),
                "{kind:?}: hash must dominate {class:?}"
            );
        }
    }
    let f = analyze(AnalyzedKind::Fcm, &traces);
    let d = analyze(AnalyzedKind::Dfcm, &traces);
    let total = |b: &AliasBreakdown| 1.0 - b.overall_accuracy();
    assert!(total(&d) < total(&f), "DFCM must mispredict less overall");
}

/// Fractions are a partition of all predictions.
#[test]
fn fractions_partition_the_trace() {
    let traces = standard_traces(7, 0.02);
    for kind in [AnalyzedKind::Fcm, AnalyzedKind::Dfcm] {
        let b = analyze(kind, &traces);
        let sum: f64 = AliasClass::ALL.iter().map(|&c| b.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let expected: u64 = traces.iter().map(|t| t.trace.len() as u64).sum();
        assert_eq!(b.total(), expected);
    }
}
