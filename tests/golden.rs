//! Golden regression tests: exact accuracy counts for pinned seeds.
//!
//! Everything in this repository is deterministic — workload generation,
//! predictor state, evaluation order — so these exact values must never
//! drift silently. If a test here fails after an *intentional* change to
//! the workload generator or a predictor, re-derive the constants with
//! the printed actual values and record the change in CHANGELOG.md; any
//! other failure is a real regression.

use dfcm_suite::predictors::{DfcmPredictor, FcmPredictor, StridePredictor, ValuePredictor};
use dfcm_suite::sim::simulate_trace;
use dfcm_suite::trace::suite::standard_suite;
use dfcm_suite::trace::TraceSource;
use dfcm_suite::vm::{assemble, programs, Vm};

const SEED: u64 = 0xD15EA5E;

fn suite_correct<P: ValuePredictor>(mut make: impl FnMut() -> P) -> u64 {
    let mut total = 0;
    for spec in standard_suite() {
        let bench = spec.trace(SEED, 0.01);
        let mut p = make();
        total += simulate_trace(&mut p, &bench.trace).correct;
    }
    total
}

#[test]
fn suite_length_is_pinned() {
    let total: usize = standard_suite().iter().map(|b| b.predictions(0.01)).sum();
    assert_eq!(total, 109_500);
}

#[test]
fn golden_fcm_suite_accuracy() {
    let correct = suite_correct(|| {
        FcmPredictor::builder()
            .l1_bits(12)
            .l2_bits(12)
            .build()
            .expect("valid")
    });
    assert_eq!(correct, 59_364, "FCM golden value drifted");
}

#[test]
fn golden_dfcm_suite_accuracy() {
    let correct = suite_correct(|| {
        DfcmPredictor::builder()
            .l1_bits(12)
            .l2_bits(12)
            .build()
            .expect("valid")
    });
    assert_eq!(correct, 72_725, "DFCM golden value drifted");
}

#[test]
fn golden_stride_suite_accuracy() {
    let correct = suite_correct(|| StridePredictor::new(12));
    assert_eq!(correct, 67_724, "stride golden value drifted");
}

#[test]
fn golden_vm_kernel_trace() {
    // The norm kernel's trace is a pure function of the program.
    let mut vm = Vm::new(assemble(programs::NORM).unwrap());
    let trace = vm.take_trace(50_000);
    assert_eq!(trace.len(), 50_000);
    let checksum: u64 = trace.iter().fold(0u64, |acc, r| {
        acc.wrapping_mul(1099511628211).wrapping_add(r.pc ^ r.value)
    });
    assert_eq!(checksum, 4356654817494445748, "VM trace checksum drifted");
}
