//! Property-based tests over the whole stack: predictors never misbehave
//! on arbitrary inputs, wrappers preserve semantics, and generation is
//! deterministic.

use dfcm_suite::predictors::{
    DelayedUpdate, DfcmPredictor, FcmPredictor, HashFunction, HybridPredictor, L2Indexed,
    LastValuePredictor, PerfectMeta, SaturatingCounter, StridePredictor, StrideWidth,
    TwoDeltaStridePredictor, ValuePredictor,
};
use dfcm_suite::trace::{Pattern, SyntheticProgram, Trace, TraceRecord, TraceSource};
use proptest::prelude::*;

fn arb_stream() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..0x1_0000u64, any::<u64>()), 1..400)
        .prop_map(|v| v.into_iter().map(|(pc, value)| (pc * 4, value)).collect())
}

fn all_predictors() -> Vec<Box<dyn ValuePredictor>> {
    vec![
        Box::new(LastValuePredictor::new(6)),
        Box::new(StridePredictor::new(6)),
        Box::new(TwoDeltaStridePredictor::new(6)),
        Box::new(
            FcmPredictor::builder()
                .l1_bits(6)
                .l2_bits(8)
                .build()
                .unwrap(),
        ),
        Box::new(
            DfcmPredictor::builder()
                .l1_bits(6)
                .l2_bits(8)
                .build()
                .unwrap(),
        ),
        Box::new(
            DfcmPredictor::builder()
                .l1_bits(6)
                .l2_bits(8)
                .stride_width(StrideWidth::Bits(8))
                .build()
                .unwrap(),
        ),
        Box::new(HybridPredictor::new(
            StridePredictor::new(6),
            FcmPredictor::builder()
                .l1_bits(6)
                .l2_bits(8)
                .build()
                .unwrap(),
            PerfectMeta,
        )),
        Box::new(DelayedUpdate::new(
            DfcmPredictor::builder()
                .l1_bits(6)
                .l2_bits(8)
                .build()
                .unwrap(),
            7,
        )),
    ]
}

proptest! {
    /// No predictor panics, and `access` reports exactly whether its own
    /// `predicted` equals the actual value, on arbitrary streams.
    #[test]
    fn predictors_are_total_and_consistent(stream in arb_stream()) {
        for mut p in all_predictors() {
            for &(pc, value) in &stream {
                let out = p.access(pc, value);
                prop_assert_eq!(out.correct, out.predicted == value);
            }
            prop_assert!(p.storage().total_bits() < u64::MAX / 2);
        }
    }

    /// predict-then-update equals access for non-oracle predictors.
    #[test]
    fn split_protocol_matches_access(stream in arb_stream()) {
        let mut a = DfcmPredictor::builder().l1_bits(6).l2_bits(8).build().unwrap();
        let mut b = DfcmPredictor::builder().l1_bits(6).l2_bits(8).build().unwrap();
        for &(pc, value) in &stream {
            let predicted = a.predict(pc);
            a.update(pc, value);
            prop_assert_eq!(b.access(pc, value).predicted, predicted);
        }
    }

    /// A zero-delay wrapper is observationally identical to the bare
    /// predictor on any stream.
    #[test]
    fn zero_delay_is_identity(stream in arb_stream()) {
        let mut bare = FcmPredictor::builder().l1_bits(6).l2_bits(8).build().unwrap();
        let mut wrapped = DelayedUpdate::new(
            FcmPredictor::builder().l1_bits(6).l2_bits(8).build().unwrap(),
            0,
        );
        for &(pc, value) in &stream {
            prop_assert_eq!(bare.access(pc, value), wrapped.access(pc, value));
        }
    }

    /// Level-2 indices stay in range for every reachable state.
    #[test]
    fn l2_indices_stay_in_range(stream in arb_stream()) {
        let mut fcm = FcmPredictor::builder().l1_bits(5).l2_bits(7).build().unwrap();
        let mut dfcm = DfcmPredictor::builder().l1_bits(5).l2_bits(7).build().unwrap();
        for &(pc, value) in &stream {
            prop_assert!(fcm.l2_index(pc) < fcm.l2_entries());
            prop_assert!(dfcm.l2_index(pc) < dfcm.l2_entries());
            fcm.access(pc, value);
            dfcm.access(pc, value);
        }
    }

    /// The FS R-5 hash always produces indices within the table for any
    /// history evolution.
    #[test]
    fn hash_stays_in_range(values in prop::collection::vec(any::<u64>(), 1..200),
                           bits in 1u32..30) {
        let mut h = 0u64;
        for v in values {
            h = HashFunction::FsR5.fold_update(h, v, bits);
            prop_assert!(h < (1u64 << bits));
        }
    }

    /// Truncated stride storage round-trips any difference that fits the
    /// width (as a signed quantity).
    #[test]
    fn stride_width_roundtrips_in_range(diff in -127i64..=127) {
        let w = StrideWidth::Bits(8);
        let mut p = DfcmPredictor::builder()
            .l1_bits(4)
            .l2_bits(6)
            .stride_width(w)
            .build()
            .unwrap();
        // Drive a stride pattern with the given difference; after warmup
        // the predictor must track it exactly.
        let mut value = 1_000_000u64;
        let mut correct_after_warmup = 0;
        for i in 0..40 {
            let out = p.access(0x40, value);
            if i >= 6 {
                correct_after_warmup += u64::from(out.correct);
            }
            value = value.wrapping_add(diff as u64);
        }
        prop_assert_eq!(correct_after_warmup, 34);
    }

    /// A saturating counter never leaves its range.
    #[test]
    fn counter_stays_in_range(ops in prop::collection::vec(any::<bool>(), 0..500),
                              bits in 1u32..8, inc in 1u16..4, dec in 1u16..4) {
        let mut c = SaturatingCounter::new(bits, inc, dec);
        for up in ops {
            if up { c.increment() } else { c.decrement() }
            prop_assert!(c.value() <= c.max());
        }
    }

    /// Synthetic programs are reproducible and respect requested lengths.
    #[test]
    fn generation_is_deterministic(seed in any::<u64>(), n in 1usize..2000) {
        let build = |seed| {
            SyntheticProgram::builder(seed)
                .inst(Pattern::Stride { start: 5, stride: 3 }, 2)
                .inst(Pattern::Random { bits: 20 }, 1)
                .build()
        };
        let a = build(seed).take_trace(n);
        let b = build(seed).take_trace(n);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), n);
    }

    /// Replaying a buffered trace yields the identical record sequence.
    #[test]
    fn trace_replay_is_faithful(stream in arb_stream()) {
        let trace: Trace = stream.iter().map(|&(pc, v)| TraceRecord::new(pc, v)).collect();
        let replayed: Vec<TraceRecord> = {
            let mut src = trace.source();
            std::iter::from_fn(move || src.next_record()).collect()
        };
        prop_assert_eq!(replayed.len(), trace.len());
        prop_assert!(replayed.iter().zip(trace.iter()).all(|(a, b)| a == b));
    }

    /// Two predictors fed the same stream through different access paths
    /// (trace replay vs direct) agree.
    #[test]
    fn replay_and_direct_feeding_agree(stream in arb_stream()) {
        let trace: Trace = stream.iter().map(|&(pc, v)| TraceRecord::new(pc, v)).collect();
        let mut direct = StridePredictor::new(6);
        let direct_correct: u64 = stream
            .iter()
            .map(|&(pc, v)| u64::from(direct.access(pc, v).correct))
            .sum();
        let mut replayed = StridePredictor::new(6);
        let stats = dfcm_suite::sim::simulate_trace(&mut replayed, &trace);
        prop_assert_eq!(stats.correct, direct_correct);
    }
}
