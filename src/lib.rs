//! Umbrella crate for the DFCM reproduction workspace.
//!
//! Re-exports the four library crates under one roof so that the
//! repository-level examples and integration tests (and downstream users
//! who want everything) need a single dependency:
//!
//! * [`predictors`] (`dfcm`) — the value predictors and instrumentation.
//! * [`trace`] (`dfcm-trace`) — the trace model and synthetic workloads.
//! * [`vm`] (`dfcm-vm`) — the RISC virtual machine and benchmark kernels.
//! * [`sim`] (`dfcm-sim`) — the trace-driven evaluation harness.
//!
//! See the repository README for a tour and `dfcm-repro` for the
//! binaries that regenerate every table and figure of the paper.
//!
//! ```
//! use dfcm_suite::predictors::{DfcmPredictor, ValuePredictor};
//! use dfcm_suite::sim::simulate_trace;
//! use dfcm_suite::trace::suite::standard_suite;
//!
//! # fn main() -> Result<(), dfcm_suite::predictors::ConfigError> {
//! let li = standard_suite()[4].trace(7, 0.01);
//! let mut p = DfcmPredictor::builder().l1_bits(12).l2_bits(12).build()?;
//! let stats = simulate_trace(&mut p, &li.trace);
//! assert!(stats.accuracy() > 0.2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dfcm as predictors;
pub use dfcm_sim as sim;
pub use dfcm_trace as trace;
pub use dfcm_vm as vm;
